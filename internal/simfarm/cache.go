package simfarm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of one cache's traffic counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	// Computes counts value constructions performed through getOrCompute.
	// With in-flight deduplication, N concurrent misses on one key still
	// yield exactly one compute; the N-1 followers block on the leader.
	Computes uint64
	Len      int
}

// lru is a mutex-guarded, capacity-bounded LRU map. Values are immutable
// artifacts (parsed files, compiled designs, simulation results), so a hit
// hands back the shared pointer; eviction only drops the cache's own
// reference. getOrCompute adds per-key in-flight deduplication
// (singleflight): concurrent misses on the same key block on one leader's
// computation instead of duplicating it — under RunMany with duplicate
// candidates the seed design recomputed identical simulations whenever
// duplicates landed in the same scheduling window.
//
// The traffic counters are atomics deliberately kept outside mu: snapshot
// never takes the map lock, so an observability poller (the edaserver
// /v1/stats handler, the per-run deltas eda.Run records) can hammer
// Stats() without contending with worker-pool cache probes. A snapshot is
// therefore not one consistent cut across counters — hits observed
// mid-probe may be a step ahead of len — which is fine for monitoring and
// for the settled before/after deltas the callers take.
type lru struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	computes  atomic.Uint64
	length    atomic.Int64

	fmu     sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation that concurrent misses join.
type flight struct {
	done chan struct{}
	val  any
	ok   bool // val is valid; false when the leader panicked out of compute
}

// entry is one cached key/value pair.
type entry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		capacity = 1
	}
	return &lru{
		cap:     capacity,
		m:       make(map[string]*list.Element),
		ll:      list.New(),
		flights: make(map[string]*flight),
	}
}

// getOrCompute returns the cached value for key, computing it on a miss.
// Concurrent callers missing the same key are deduplicated: exactly one
// runs compute, the rest wait and share the result.
func (c *lru) getOrCompute(key string, compute func() any) any {
	if v, ok := c.get(key); ok {
		return v
	}
	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		<-f.done
		if f.ok {
			return f.val
		}
		// The leader panicked out of compute; its flight is gone, so
		// retry from scratch rather than hand back a nil value.
		return c.getOrCompute(key, compute)
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()

	// Unwind in a defer so a panicking compute still releases followers
	// blocked on f.done and clears the flight entry; the panic itself
	// propagates to this leader's caller.
	defer func() {
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(f.done)
	}()

	if v, ok := c.peek(key); ok {
		// A previous leader finished between our miss and our flight
		// registration; serve its value rather than recomputing.
		f.val = v
	} else {
		f.val = compute()
		c.add(key, f.val)
		c.computes.Add(1)
	}
	f.ok = true
	return f.val
}

// peek returns the cached value without touching LRU order or counters.
func (c *lru) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).val, true
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// add inserts (or refreshes) a value, evicting the least recently used
// entry when the cache is over capacity.
func (c *lru) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&entry{key: key, val: val})
	c.length.Add(1)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*entry).key)
		c.evictions.Add(1)
		c.length.Add(-1)
	}
}

// snapshot returns the current counters without taking the map lock; see
// the consistency note on lru.
func (c *lru) snapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Computes:  c.computes.Load(),
		Len:       int(c.length.Load()),
	}
}

// purge drops every entry but keeps the counters.
func (c *lru) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*list.Element)
	c.ll.Init()
	c.length.Store(0)
}
