// Package simfarm is the compile-once/run-many simulation engine behind
// every candidate-scoring framework in the suite (AutoChip, VRank,
// crosscheck, the agent, HLS cosim). It layers three content-addressed,
// mutex-guarded LRU caches over the verilog front end —
//
//	parse:   source text            -> parsed module list
//	design:  (sources, top)         -> elaborated CompiledDesign
//	result:  (design, sim options)  -> SimResult
//
// — plus a bounded worker pool (RunMany) that simulates independent
// candidates concurrently. The design and result layers deduplicate
// concurrent misses in flight (singleflight), and a source-hash memo
// keeps repeated cache probes from re-hashing full sources. Every cached
// artifact is immutable and every simulation is deterministic in its
// seed, so cached and parallel batches are bit-identical to the serial,
// cache-cold path.
//
// Importing the package installs the default farm as the compile cache
// behind verilog.RunTestbench, so legacy call sites stop re-parsing
// sources the farm has already seen.
package simfarm

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llm4eda/internal/core"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/obs"
	"llm4eda/internal/verilog"
	"llm4eda/internal/vlint"
)

// Options bound the default cache capacities. Zero values select
// defaults sized for the benchmark suites (hundreds of candidates ×
// a handful of benches).
type Options struct {
	// ParseCap bounds cached parsed sources (default 512).
	ParseCap int
	// DesignCap bounds cached elaborated designs (default 512).
	DesignCap int
	// ResultCap bounds cached simulation results (default 2048).
	ResultCap int
}

func (o Options) withDefaults() Options {
	if o.ParseCap == 0 {
		o.ParseCap = 512
	}
	if o.DesignCap == 0 {
		o.DesignCap = 512
	}
	if o.ResultCap == 0 {
		o.ResultCap = 2048
	}
	return o
}

// Farm owns the cache hierarchy. A single Farm is safe for concurrent use
// from any number of goroutines.
type Farm struct {
	parses  *lru
	designs *lru
	results *lru
	// hashes memoizes source-text -> content hash so a source shared
	// across many cache probes (a bench reused by every candidate) is
	// sha-hashed once, not once per probe.
	hashes *lru
	// lints memoizes static-analysis outcomes of standalone DUTs
	// (keyed by DUT content hash + top), so screening the same candidate
	// against many benches lints it once. lintRejects counts jobs
	// rejected by screening — simulations the farm never had to run.
	lints       *lru
	lintRejects atomic.Int64

	// vm accumulates tiered-VM dispatch coverage over every simulation
	// the farm actually executes (cache hits replay a prior run and add
	// nothing). Guarded by its own mutex: per-run accumulation is one
	// short critical section at simulation end, never on a cache probe.
	vmMu sync.Mutex
	vm   verilog.VMStats

	// panics counts worker panics recovered in runJobCtx — each one a
	// simulation that would have killed the process before PR 9.
	panics atomic.Int64
	// faults is the chaos-test injector; nil (one atomic load) in
	// production.
	faults atomic.Pointer[faultinject.Injector]
}

// SetFaults installs (or, with nil, removes) a fault injector on the
// farm. Test-only in spirit: the injector fires at the farm.job hook
// point once per job, before any cache is consulted.
func (f *Farm) SetFaults(in *faultinject.Injector) {
	f.faults.Store(in)
}

// New builds a farm with the given capacities.
func New(opts Options) *Farm {
	opts = opts.withDefaults()
	return &Farm{
		parses:  newLRU(opts.ParseCap),
		designs: newLRU(opts.DesignCap),
		results: newLRU(opts.ResultCap),
		hashes:  newLRU(2 * opts.ParseCap),
		lints:   newLRU(opts.ParseCap),
	}
}

var (
	defaultFarm     *Farm
	defaultFarmOnce sync.Once
)

// Default returns the process-wide farm shared by every framework package
// and by the legacy verilog.RunTestbench entry point.
func Default() *Farm {
	defaultFarmOnce.Do(func() { defaultFarm = New(Options{}) })
	return defaultFarm
}

func init() {
	// Route the legacy entry point through the shared cache: any package
	// that links simfarm makes verilog.RunTestbench compile-once too.
	verilog.SetTestbenchCompiler(Default().CompileTestbench)
}

// FarmStats reports per-layer cache traffic plus the tiered-VM dispatch
// coverage summed over every simulation the farm executed.
type FarmStats struct {
	Parses, Designs, Results Stats
	// Lints is the static-analysis memo's traffic; LintRejects counts
	// jobs rejected by pre-simulation screening (each one a VM compile +
	// simulation the farm did not spend).
	Lints       Stats
	LintRejects int64
	// Panics counts worker panics recovered into Result.Err instead of
	// crashing the process.
	Panics int64
	VM     verilog.VMStats
}

// Stats snapshots the farm's counters. The snapshot is lock-free (each
// layer's counters are atomics held outside the cache lock), so Stats is
// safe and cheap to poll from any number of goroutines while RunMany is
// saturating the caches — the edaserver /v1/stats handler does exactly
// that. Counters are loaded individually, not as one consistent cut; the
// before/after deltas eda.Run records are taken at rest, where that
// distinction vanishes.
func (f *Farm) Stats() FarmStats {
	f.vmMu.Lock()
	vm := f.vm
	f.vmMu.Unlock()
	return FarmStats{
		Parses:      f.parses.snapshot(),
		Designs:     f.designs.snapshot(),
		Results:     f.results.snapshot(),
		Lints:       f.lints.snapshot(),
		LintRejects: f.lintRejects.Load(),
		Panics:      f.panics.Load(),
		VM:          vm,
	}
}

// Purge empties every cache layer (counters are kept). Benchmarks use it
// to measure cache-cold behavior.
func (f *Farm) Purge() {
	f.parses.purge()
	f.designs.purge()
	f.results.purge()
	f.hashes.purge()
	f.lints.purge()
}

// Delta returns the per-layer traffic between an earlier snapshot and s.
func (s FarmStats) Delta(earlier FarmStats) FarmStats {
	return FarmStats{
		Parses:      s.Parses.delta(earlier.Parses),
		Designs:     s.Designs.delta(earlier.Designs),
		Results:     s.Results.delta(earlier.Results),
		Lints:       s.Lints.delta(earlier.Lints),
		LintRejects: s.LintRejects - earlier.LintRejects,
		Panics:      s.Panics - earlier.Panics,
		VM:          s.VM.Sub(earlier.VM),
	}
}

func (s Stats) delta(earlier Stats) Stats {
	return Stats{
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
		Computes:  s.Computes - earlier.Computes,
		Len:       s.Len,
	}
}

// EmitStats streams the farm's per-cache counters as core cache events —
// one per layer (parse, design, result) — to the given sink. Callers
// wanting per-run traffic pass the delta of two snapshots.
func EmitStats(sink core.Sink, stats FarmStats) {
	if sink == nil {
		return
	}
	for _, layer := range []struct {
		name string
		s    Stats
	}{
		{"parse", stats.Parses},
		{"design", stats.Designs},
		{"result", stats.Results},
		{"lint", stats.Lints},
	} {
		detail := fmt.Sprintf("entries=%d", layer.s.Len)
		if layer.name == "lint" {
			detail = fmt.Sprintf("entries=%d rejects=%d", layer.s.Len, stats.LintRejects)
		}
		sink.Emit(core.Event{
			Kind:      core.EventCache,
			Framework: "simfarm",
			Phase:     layer.name,
			Detail:    detail,
			Hits:      layer.s.Hits,
			Misses:    layer.s.Misses,
			Evictions: layer.s.Evictions,
		})
	}
}

// parseResult caches a parse outcome; parse errors are cached too, so a
// non-compiling candidate is diagnosed once no matter how many benches it
// is scored against.
type parseResult struct {
	file *verilog.SourceFile
	err  error
}

// designResult caches an elaboration outcome.
type designResult struct {
	cd  *verilog.CompiledDesign
	err error
}

// simResult caches one deterministic simulation outcome.
type simResult struct {
	res *verilog.SimResult
	err error
}

// sourceHash returns the memoized content hash of one source text.
func (f *Farm) sourceHash(src string) string {
	if v, ok := f.hashes.get(src); ok {
		return v.(string)
	}
	h := verilog.HashSources("", src)
	f.hashes.add(src, h)
	return h
}

// Parse returns the cached parse of src, parsing on miss.
func (f *Farm) Parse(src string) (*verilog.SourceFile, error) {
	key := f.sourceHash(src)
	if v, ok := f.parses.get(key); ok {
		pr := v.(*parseResult)
		return pr.file, pr.err
	}
	file, err := verilog.Parse(src)
	f.parses.add(key, &parseResult{file: file, err: err})
	return file, err
}

// Compile returns the cached elaboration of the given sources under top,
// parsing each source through the parse cache and elaborating on miss.
// The design key derives from the per-source content hashes (memoized),
// so probing the cache re-hashes no full source; concurrent misses on one
// key elaborate once (singleflight).
func (f *Farm) Compile(top string, srcs ...string) (*verilog.CompiledDesign, error) {
	// Equivalent to verilog.DesignHash(top, srcs...) with the per-source
	// hashes served from the memo, so a design compiled directly and one
	// compiled through the farm share one cache identity.
	hs := make([]string, len(srcs))
	for i, src := range srcs {
		hs[i] = f.sourceHash(src)
	}
	key := verilog.HashSources(top, hs...)
	dr := f.designs.getOrCompute(key, func() any {
		files := make([]*verilog.SourceFile, len(srcs))
		for i, src := range srcs {
			file, err := f.Parse(src)
			if err != nil {
				return &designResult{err: err}
			}
			files[i] = file
		}
		cd, err := verilog.ElaborateParsed(top, key, verilog.MergeSources(files...))
		return &designResult{cd: cd, err: err}
	}).(*designResult)
	return dr.cd, dr.err
}

// CompileTestbench pairs a DUT compile with a testbench compile under the
// bench's top module. This is the TestbenchCompiler installed behind
// verilog.RunTestbench.
func (f *Farm) CompileTestbench(dutSrc, tbSrc, tbTop string) (*verilog.CompiledDesign, error) {
	return f.Compile(tbTop, dutSrc, tbSrc)
}

// resultKey identifies one deterministic run: the design identity plus
// every option that can change observable behavior, normalized so that
// zero-valued and explicitly-default options share one cache entry.
func resultKey(hash string, opts verilog.SimOptions) string {
	opts = opts.Normalized()
	b := make([]byte, 0, len(hash)+48)
	b = append(b, hash...)
	b = append(b, '|')
	b = strconv.AppendUint(b, opts.MaxTime, 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, opts.MaxSteps, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(opts.MaxDeltas), 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, opts.Seed, 10)
	return string(b)
}

// Run simulates a compiled design under the given options, returning the
// memoized result when this exact (design, options) pair has run before.
// The simulator is fully deterministic, so the cached result is
// bit-identical to a fresh run. Returned results are shared: callers must
// treat them as read-only.
func (f *Farm) Run(cd *verilog.CompiledDesign, opts verilog.SimOptions) (*verilog.SimResult, error) {
	key := resultKey(cd.Hash, opts)
	sr := f.results.getOrCompute(key, func() any {
		res, err := cd.Run(opts)
		if res != nil {
			f.vmMu.Lock()
			f.vm = f.vm.Add(res.VM)
			f.vmMu.Unlock()
		}
		return &simResult{res: res, err: err}
	}).(*simResult)
	return sr.res, sr.err
}

// lintOutcome caches the static analysis of one standalone DUT.
type lintOutcome struct {
	diags []vlint.Diagnostic
	rej   *vlint.RejectError // non-nil when error-severity findings exist
	err   error              // parse or standalone-elaboration failure: not lintable
}

// lint returns the memoized static analysis of dutSrc elaborated
// standalone under dutTop. Parsing goes through the parse cache (shared
// with the later DUT+bench compile), but standalone elaboration is done
// directly rather than through the design cache: the DUT-alone design
// is never simulated, and keeping it out of the design layer keeps that
// layer's compute counters an honest measure of simulation work.
func (f *Farm) lint(dutSrc, dutTop string) *lintOutcome {
	key := f.sourceHash(dutSrc) + "|" + dutTop
	return f.lints.getOrCompute(key, func() any {
		file, err := f.Parse(dutSrc)
		if err != nil {
			return &lintOutcome{err: err}
		}
		d, err := verilog.Elaborate(file, dutTop)
		if err != nil {
			return &lintOutcome{err: err}
		}
		out := &lintOutcome{diags: vlint.Lint(file, d)}
		if errs := vlint.Errors(out.diags); len(errs) > 0 {
			out.rej = &vlint.RejectError{Top: dutTop, Diags: errs}
		}
		return out
	}).(*lintOutcome)
}

// Lint returns the full (warning + error) diagnostics of a standalone
// DUT, memoized by content. The error is the DUT's own parse or
// elaboration failure.
func (f *Farm) Lint(dutSrc, dutTop string) ([]vlint.Diagnostic, error) {
	out := f.lint(dutSrc, dutTop)
	return out.diags, out.err
}

// LintScreen decides whether screening rejects a DUT: non-nil (a
// *vlint.RejectError) exactly when the DUT compiles standalone and has
// error-severity findings. A DUT that fails to parse or elaborate is
// NOT rejected here — it falls through so the compile pipeline reports
// the same error text it always has. Screening is therefore sound:
// it only ever removes candidates that are structurally broken RTL,
// never changes what any surviving candidate's simulation reports.
func (f *Farm) LintScreen(dutSrc, dutTop string) error {
	if out := f.lint(dutSrc, dutTop); out.rej != nil {
		return out.rej
	}
	return nil
}

// RunTestbench is the cached equivalent of verilog.RunTestbench: compile
// DUT+bench once, then memoize the run itself.
func (f *Farm) RunTestbench(dutSrc, tbSrc, tbTop string, opts verilog.SimOptions) (*verilog.SimResult, error) {
	cd, err := f.CompileTestbench(dutSrc, tbSrc, tbTop)
	if err != nil {
		return nil, err
	}
	return f.Run(cd, opts)
}

// RunTestbench runs one DUT+bench pair through the default farm.
func RunTestbench(dutSrc, tbSrc, tbTop string, opts verilog.SimOptions) (*verilog.SimResult, error) {
	return Default().RunTestbench(dutSrc, tbSrc, tbTop, opts)
}

// Job is one independent simulation: a candidate DUT paired with a bench.
type Job struct {
	DUT, TB string
	// Top is the bench's top module.
	Top string
	// DUTTop is the candidate's own top module; required for Lint.
	DUTTop string
	// Lint opts the job into pre-simulation screening: a DUT that
	// compiles standalone and carries error-severity lint findings is
	// rejected (Result.Err is a *vlint.RejectError) without spending a
	// VM compile or simulation on the DUT+bench pair.
	Lint bool
	// Opts bound the run; Opts.Seed makes the job's $random stream
	// deterministic regardless of scheduling.
	Opts verilog.SimOptions
}

// Result is the outcome of one Job. Err carries front-end (parse or
// elaboration) failures; simulation-level defects land inside Res exactly
// as in the serial path.
type Result struct {
	Res *verilog.SimResult
	Err error
}

// Passed reports whether the job compiled and its run passed.
func (r Result) Passed() bool {
	return r.Err == nil && r.Res != nil && r.Res.Passed()
}

// RunMany simulates independent jobs on a bounded worker pool and returns
// results in job order. workers <= 0 selects GOMAXPROCS. Each job has its
// own Simulator and its own seed, so the output slice is bit-identical to
// running the same jobs serially in a loop — scheduling affects only
// wall-clock time. Shared substructure (a bench reused across candidates,
// duplicate candidate sources) is served from the farm's caches; there is
// no in-flight coalescing, so duplicates that land on workers in the same
// scheduling window may each recompute before the first result is cached —
// a wasted-work worst case, never a correctness one.
func (f *Farm) RunMany(jobs []Job, workers int) []Result {
	results, _ := f.RunManyCtx(context.Background(), jobs, workers)
	return results
}

// RunManyCtx is RunMany under a context: when ctx is cancelled mid-batch,
// dispatch stops, in-flight jobs finish, every job that never started is
// marked with ctx.Err(), and the call returns ctx.Err() promptly (within
// one job's runtime). Completed slots are identical to the uncancelled
// run.
func (f *Farm) RunManyCtx(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	results := make([]Result, len(jobs))
	started := make([]bool, len(jobs))
	err := MapCtx(ctx, len(jobs), workers, func(i int) {
		started[i] = true
		results[i] = f.runJobCtx(ctx, jobs[i])
	})
	if err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results, err
}

// runJobCtx executes one job: fault hook first (before any cache, so
// every call counts under a plan), then lint screen (when opted in),
// then the cached compile+run path. A panic anywhere below — the
// kernel, the VM, an injected fault — is recovered into a
// *core.PanicError result so one bad candidate costs one job, not the
// process. Nothing a panicking compute produced is cached: the
// singleflight layers unwind panics without storing an entry.
func (f *Farm) runJobCtx(ctx context.Context, job Job) (out Result) {
	defer func() {
		if r := recover(); r != nil {
			f.panics.Add(1)
			out = Result{Err: &core.PanicError{Val: r, Stack: debug.Stack()}}
		}
	}()
	if in := f.faults.Load(); in != nil {
		if err := in.Fire(ctx, faultinject.PointFarmJob); err != nil {
			return Result{Err: err}
		}
	}
	// The span recorder rides the job context (nil when the caller does
	// not trace); each stage below records into the canonical phase even
	// when the cache answers it — a 2µs cached compile is still compile
	// time, and the breakdown is how cache wins become visible per job.
	sp := obs.SpansOf(ctx)
	if job.Lint && job.DUTTop != "" {
		start := time.Now()
		rej := f.LintScreen(job.DUT, job.DUTTop)
		if sp != nil {
			sp.Since(obs.PhaseLintScreen, start)
		}
		if rej != nil {
			f.lintRejects.Add(1)
			return Result{Err: rej}
		}
	}
	start := time.Now()
	cd, err := f.CompileTestbench(job.DUT, job.TB, job.Top)
	if sp != nil {
		sp.Since(obs.PhaseCompile, start)
	}
	if err != nil {
		return Result{Err: err}
	}
	start = time.Now()
	res, err := f.Run(cd, job.Opts)
	if sp != nil {
		sp.Since(obs.PhaseSim, start)
	}
	return Result{Res: res, Err: err}
}

// RunMany runs a batch through the default farm.
func RunMany(jobs []Job, workers int) []Result {
	return Default().RunMany(jobs, workers)
}

// RunManyCtx runs a cancellable batch through the default farm.
func RunManyCtx(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	return Default().RunManyCtx(ctx, jobs, workers)
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0) and returns when all calls finish. It is
// the generic batch-evaluation primitive for non-Verilog scoring loops
// (the SLT and GP population evaluations): fn writes its result into a
// caller-owned slot at index i, so output order is deterministic.
func Map(n, workers int, fn func(i int)) {
	_ = MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map under a context. Cancellation stops new dispatch
// immediately: indices already handed to a worker run to completion
// (fn is never interrupted mid-call), no further fn calls start, every
// worker goroutine exits, and MapCtx returns ctx.Err(). With an
// uncancelled context the call visits every index and returns nil —
// bit-identical to Map.
//
// A panicking fn does not kill the pool: the panic is recovered per
// call, remaining indices still run, and MapCtx returns the first
// panic (as a *core.PanicError) when the context was never cancelled.
// This is the backstop for generic scoring fns (SLT, GP); the farm's
// own jobs recover one level deeper in runJobCtx, per slot.
func MapCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err // dead on arrival: no worker starts, no fn runs
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var panicErr atomic.Pointer[core.PanicError]
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicErr.CompareAndSwap(nil, &core.PanicError{Val: r, Stack: debug.Stack()})
			}
		}()
		fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			call(i)
		}
		if pe := panicErr.Load(); pe != nil {
			return pe
		}
		return nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				call(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		// Check first so a cancelled context never wins the select race
		// against a ready worker.
		if err = ctx.Err(); err != nil {
			break dispatch
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		if pe := panicErr.Load(); pe != nil {
			err = pe
		}
	}
	return err
}
