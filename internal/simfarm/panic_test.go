package simfarm

import (
	"context"
	"errors"
	"testing"

	"llm4eda/internal/core"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/verilog"
)

// TestFarmJobPanicRecovered: a panic inside one farm job becomes that
// job's Result.Err (a *core.PanicError carrying the stack) and bumps
// FarmStats.Panics; the batch, the pool and the process all survive,
// and the next identical job runs clean — nothing the panicking run
// touched was cached.
func TestFarmJobPanicRecovered(t *testing.T) {
	goroutineGuard(t)
	farm := New(Options{})
	farm.SetFaults(faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointFarmJob, Kind: faultinject.KindPanic, Every: 1, Max: 1},
	}}))
	defer farm.SetFaults(nil)

	job := Job{
		DUT:  "module d(output y); assign y = 1'b0; endmodule",
		TB:   "module tb; initial $finish; endmodule",
		Top:  "tb",
		Opts: verilog.SimOptions{},
	}
	results := farm.RunMany([]Job{job, job}, 1)

	var pe *core.PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("job 0 err = %v (%T), want *core.PanicError", results[0].Err, results[0].Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered PanicError carries no stack")
	}
	if _, ok := pe.Val.(*faultinject.Panic); !ok {
		t.Errorf("panic value = %T, want *faultinject.Panic", pe.Val)
	}
	if results[1].Err != nil || results[1].Res == nil {
		t.Fatalf("job 1 after recovered panic: err=%v res=%v, want clean run", results[1].Err, results[1].Res)
	}
	if got := farm.Stats().Panics; got != 1 {
		t.Errorf("FarmStats.Panics = %d, want 1", got)
	}
}

// TestMapCtxPanicBackstop: a panicking fn on the generic pool surfaces
// as MapCtx's error instead of crashing, and the remaining indices
// still run — the backstop for non-farm scoring loops (SLT, GP).
func TestMapCtxPanicBackstop(t *testing.T) {
	goroutineGuard(t)
	for _, workers := range []int{1, 4} {
		visited := make([]bool, 16)
		err := MapCtx(context.Background(), len(visited), workers, func(i int) {
			visited[i] = true
			if i == 3 {
				panic("boom")
			}
		})
		var pe *core.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v (%T), want *core.PanicError", workers, err, err)
		}
		if pe.Val != "boom" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Val)
		}
		for i, v := range visited {
			if !v {
				t.Errorf("workers=%d: index %d skipped after recovered panic", workers, i)
			}
		}
	}
}

// TestMapCtxCancelBeatsPanic: when the context is cancelled, MapCtx
// still reports ctx.Err() even if some fn panicked — cancellation is
// the caller's signal and keeps the established contract.
func TestMapCtxCancelBeatsPanic(t *testing.T) {
	goroutineGuard(t)
	ctx, cancel := context.WithCancel(context.Background())
	err := MapCtx(ctx, 100, 1, func(i int) {
		if i == 2 {
			cancel()
			panic("boom")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
