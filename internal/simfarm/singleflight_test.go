package simfarm

import (
	"sync"
	"testing"
	"time"

	"llm4eda/internal/verilog"
)

// TestSingleflightDedupesConcurrentMisses pins the in-flight dedup
// contract: N goroutines requesting the same cold (design, options) pair
// trigger exactly one elaboration and one simulation; the other N-1 wait
// for the leader instead of recomputing (the seed farm's documented race
// burned one duplicate compute per concurrently-missing worker).
func TestSingleflightDedupesConcurrentMisses(t *testing.T) {
	f := New(Options{})
	dut := tinyDUT(4242)
	const n = 16

	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate // maximize the same-window collision the seed raced on
			res, err := f.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{})
			if err != nil {
				errs <- err
				return
			}
			if !res.Passed() {
				errs <- err
			}
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent run failed: %v", err)
	}

	s := f.Stats()
	if s.Designs.Computes != 1 {
		t.Errorf("design computed %d times for %d identical requests, want 1", s.Designs.Computes, n)
	}
	if s.Results.Computes != 1 {
		t.Errorf("result computed %d times for %d identical requests, want 1", s.Results.Computes, n)
	}
}

// TestSingleflightDistinctKeysDoNotBlock sanity-checks that dedup is
// per-key: distinct designs all compute.
func TestSingleflightDistinctKeysDoNotBlock(t *testing.T) {
	f := New(Options{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.RunTestbench(tinyDUT(i), tinyTB, "tb", verilog.SimOptions{}); err != nil {
				t.Errorf("job %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	s := f.Stats()
	if s.Designs.Computes != n || s.Results.Computes != n {
		t.Errorf("distinct keys: designs %d results %d computes, want %d each",
			s.Designs.Computes, s.Results.Computes, n)
	}
}

// TestSingleflightPanickingComputeUnblocksFollowers pins the unwind
// contract: a compute that panics must still close its flight and clear
// the entry, so followers waiting on the same key retry instead of
// blocking forever once someone recovers around the leader.
func TestSingleflightPanickingComputeUnblocksFollowers(t *testing.T) {
	c := newLRU(4)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader: expected compute panic to propagate")
			}
		}()
		c.getOrCompute("k", func() any {
			close(inFlight)
			<-release
			panic("boom")
		})
	}()
	<-inFlight

	got := make(chan any, 1)
	go func() {
		got <- c.getOrCompute("k", func() any { return "fallback" })
	}()
	// Give the follower time to join the flight, then detonate the
	// leader. If the follower had not joined yet it simply becomes the
	// new leader and computes "fallback" itself — either way the test
	// only fails if a follower stays blocked.
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case v := <-got:
		if v != "fallback" {
			t.Errorf("follower got %v, want fallback", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower deadlocked after leader panic")
	}
	if v, ok := c.get("k"); !ok || v != "fallback" {
		t.Errorf("cache holds %v (ok=%v) after retry, want fallback", v, ok)
	}
}
