package simfarm

import (
	"sync"
	"testing"

	"llm4eda/internal/verilog"
)

// TestSingleflightDedupesConcurrentMisses pins the in-flight dedup
// contract: N goroutines requesting the same cold (design, options) pair
// trigger exactly one elaboration and one simulation; the other N-1 wait
// for the leader instead of recomputing (the seed farm's documented race
// burned one duplicate compute per concurrently-missing worker).
func TestSingleflightDedupesConcurrentMisses(t *testing.T) {
	f := New(Options{})
	dut := tinyDUT(4242)
	const n = 16

	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate // maximize the same-window collision the seed raced on
			res, err := f.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{})
			if err != nil {
				errs <- err
				return
			}
			if !res.Passed() {
				errs <- err
			}
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent run failed: %v", err)
	}

	s := f.Stats()
	if s.Designs.Computes != 1 {
		t.Errorf("design computed %d times for %d identical requests, want 1", s.Designs.Computes, n)
	}
	if s.Results.Computes != 1 {
		t.Errorf("result computed %d times for %d identical requests, want 1", s.Results.Computes, n)
	}
}

// TestSingleflightDistinctKeysDoNotBlock sanity-checks that dedup is
// per-key: distinct designs all compute.
func TestSingleflightDistinctKeysDoNotBlock(t *testing.T) {
	f := New(Options{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.RunTestbench(tinyDUT(i), tinyTB, "tb", verilog.SimOptions{}); err != nil {
				t.Errorf("job %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	s := f.Stats()
	if s.Designs.Computes != n || s.Results.Computes != n {
		t.Errorf("distinct keys: designs %d results %d computes, want %d each",
			s.Designs.Computes, s.Results.Computes, n)
	}
}
