// Package autochip implements the paper's Fig. 4 framework: fully
// automated Verilog generation with LLMs and EDA-tool feedback, including
// the tree-search variant (k candidates per round, ranked by the fraction
// of passing testbench checks, best candidate's tool output fed back) and
// the earlier structured conversational flow of [10] (model-generated
// testbenches, human feedback only on repeated failure).
package autochip

import (
	"context"
	"fmt"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// Options parameterize a run.
type Options struct {
	// RunSpec carries the shared execution envelope (seed, tier, workers,
	// deadline); Workers bounds the per-round candidate simulations.
	core.RunSpec
	Model llm.Model
	// K is the number of candidate responses per round (tree breadth).
	K int
	// Depth is the number of feedback rounds (tree depth).
	Depth int
	// Temperature for generation (default 0.7).
	Temperature float64
	// Sim bounds each candidate simulation.
	Sim verilog.SimOptions
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 1
	}
	if o.Depth == 0 {
		o.Depth = 1
	}
	if o.Temperature == 0 {
		o.Temperature = 0.7
	}
	return o
}

// Candidate is one generated design with its evaluation.
type Candidate struct {
	Source   string
	Verdict  core.Verdict
	Feedback string
}

// Result reports one AutoChip run. TotalCandidates and the token counts
// cover every generated candidate, including the full breadth of a round
// that solves early — rounds generate their whole batch before scoring
// (see Run), so these are per-round costs, not cost-to-first-pass.
type Result struct {
	Solved          bool
	Rounds          int
	TotalCandidates int
	Best            Candidate
	TokensIn        int
	TokensOut       int
}

// Evaluate compiles and simulates a candidate against the problem's
// testbench, producing the verdict and the raw tool feedback the next
// round sees. The bench and the candidate compile through the shared
// simfarm cache, so re-evaluating a known design is free.
func Evaluate(p *benchset.Problem, source string, sim verilog.SimOptions) Candidate {
	cands, _ := EvaluateBatch(context.Background(), p, []string{source}, sim, 1)
	return cands[0]
}

// EvaluateBatch scores one round's candidate batch against the problem's
// testbench through the simfarm engine: one bench compile, duplicate
// candidates simulated once, independent candidates in parallel (workers
// <= 0 selects GOMAXPROCS). Output order matches the input and equals a
// serial Evaluate loop bit for bit. A cancelled ctx aborts the batch
// within one job and returns ctx.Err(); candidates that never simulated
// carry the cancellation error as their compile log.
func EvaluateBatch(ctx context.Context, p *benchset.Problem, sources []string, sim verilog.SimOptions, workers int) ([]Candidate, error) {
	tb := p.Testbench()
	jobs := make([]simfarm.Job, len(sources))
	for i, src := range sources {
		jobs[i] = simfarm.Job{DUT: src, TB: tb, Top: "tb",
			DUTTop: p.TopModule, Lint: true, Opts: sim}
	}
	results, err := simfarm.RunManyCtx(ctx, jobs, workers)
	cands := make([]Candidate, len(sources))
	for i, r := range results {
		cands[i] = toCandidate(sources[i], r.Res, r.Err)
	}
	return cands, err
}

// toCandidate folds one simulation outcome into the candidate verdict and
// the tool feedback the next round sees.
func toCandidate(source string, res *verilog.SimResult, err error) Candidate {
	c := Candidate{Source: source}
	if err != nil {
		c.Verdict = core.Verdict{Compiled: false, Log: err.Error()}
		c.Feedback = err.Error()
		return c
	}
	v := core.Verdict{Compiled: true, Checks: res.Checks, Failures: res.Failures, Log: res.Output}
	if res.RuntimeErr != nil {
		v.Log += "\n" + res.RuntimeErr.Error()
		if v.Failures == 0 {
			v.Failures = v.Checks // a runtime error invalidates the run
		}
	}
	if res.TimedOut {
		v.Log += "\nsimulation timed out before $finish"
		if v.Checks == 0 {
			v.Failures = 1
		}
	}
	c.Verdict = v
	if !v.Pass() {
		c.Feedback = summarizeFeedback(v.Log)
	}
	return c
}

// summarizeFeedback truncates tool output the way a context window would.
func summarizeFeedback(log string) string {
	lines := strings.Split(log, "\n")
	var kept []string
	for _, l := range lines {
		if strings.Contains(l, "CHECK FAILED") || strings.Contains(l, "ERROR") ||
			strings.Contains(l, "error") || strings.Contains(l, "timed out") {
			kept = append(kept, l)
		}
		if len(kept) >= 12 {
			break
		}
	}
	if len(kept) == 0 && len(lines) > 0 {
		kept = lines[:min(4, len(lines))]
	}
	return strings.Join(kept, "\n")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Run executes the tree-search loop on one problem: Depth rounds of K
// candidates; each round ranks candidates by pass fraction and feeds the
// best one's tool output back. Each round generates its full breadth of K
// candidates before any is scored (the paper's tree-search shape); token
// and candidate counts therefore cover the whole final round even when an
// early candidate in it passes.
//
// The loop checks ctx between rounds and aborts candidate batches within
// one simulation; progress streams to the context's event sink (round
// phases, model calls, scored candidates).
func Run(ctx context.Context, p *benchset.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Model == nil {
		return nil, fmt.Errorf("autochip: Options.Model is required")
	}
	sink := core.SinkOf(ctx)
	res := &Result{}
	var prev *Candidate

	for round := 0; round < opts.Depth; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Rounds = round + 1
		sink.Emit(core.Event{
			Kind: core.EventPhaseStart, Framework: "autochip", Phase: "round",
			Seq: round + 1, Total: opts.Depth, Detail: p.ID,
		})
		// Generate the round's full candidate batch first (model calls are
		// inherently sequential), then score the batch in one simfarm pass:
		// the testbench compiles once per problem, not once per candidate.
		sources := make([]string, 0, opts.K)
		for k := 0; k < opts.K; k++ {
			task := llm.VerilogGen{
				ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty,
			}
			prompt := llm.BuildDesignPrompt(p.Spec)
			if prev != nil {
				task.PrevAttempt = prev.Source
				task.Feedback = prev.Feedback
				prompt = llm.BuildFeedbackPrompt(p.Spec, prev.Source, prev.Feedback)
			}
			resp, err := opts.Model.Generate(llm.Request{
				System:      llm.SystemVerilogDesigner,
				Prompt:      prompt,
				Task:        task,
				Temperature: opts.Temperature,
			})
			if err != nil {
				return nil, fmt.Errorf("autochip: generation failed: %w", err)
			}
			res.TokensIn += resp.TokensIn
			res.TokensOut += resp.TokensOut
			res.TotalCandidates++
			sources = append(sources, resp.Text)
			sink.Emit(core.Event{
				Kind: core.EventLLMCall, Framework: "autochip", Phase: "code generation",
				Seq: res.TotalCandidates, TokensIn: resp.TokensIn, TokensOut: resp.TokensOut,
			})
		}
		cands, err := EvaluateBatch(ctx, p, sources, opts.Sim, opts.Workers)
		if err != nil {
			return res, err
		}
		// Every candidate in the batch was scored (EvaluateBatch runs the
		// whole round), so each gets its event before selection.
		for i := range cands {
			sink.Emit(core.Event{
				Kind: core.EventCandidate, Framework: "autochip", Phase: p.ID,
				Seq: i + 1, Total: len(cands), Score: cands[i].Verdict.PassFraction(),
				OK: cands[i].Verdict.Pass(), Detail: cands[i].Verdict.String(),
			})
		}
		var best *Candidate
		for i := range cands {
			cand := cands[i]
			if best == nil || rankScore(cand) > rankScore(*best) {
				best = &cands[i]
			}
			if cand.Verdict.Pass() {
				res.Solved = true
				res.Best = cand
				sink.Emit(core.Event{
					Kind: core.EventPhaseEnd, Framework: "autochip", Phase: "round",
					Seq: round + 1, Total: opts.Depth, OK: true, Detail: p.ID,
				})
				return res, nil
			}
		}
		res.Best = *best
		prev = best
		sink.Emit(core.Event{
			Kind: core.EventPhaseEnd, Framework: "autochip", Phase: "round",
			Seq: round + 1, Total: opts.Depth, OK: false, Detail: p.ID,
		})
	}
	return res, nil
}

// rankScore orders candidates: pass fraction, with non-compiling designs
// last.
func rankScore(c Candidate) float64 {
	if !c.Verdict.Compiled {
		return -1
	}
	return c.Verdict.PassFraction()
}

// FlowResult reports one structured-conversational-flow run ([10]).
type FlowResult struct {
	Solved             bool
	HumanInterventions int
	Rounds             int
	// OwnTBChecks is the check count of the model-generated testbench
	// (coverage loss shows up here).
	OwnTBChecks int
}

// StructuredFlow reproduces the earlier study's loop: the model writes the
// design AND its own testbench; tool feedback iterates against the model's
// testbench; a human intervenes (with the reference bench's output) only
// after the loop stalls. maxRounds bounds total iterations; ctx is checked
// between rounds.
func StructuredFlow(ctx context.Context, p *benchset.Problem, model llm.Model, maxRounds int, sim verilog.SimOptions) (*FlowResult, error) {
	if maxRounds == 0 {
		maxRounds = 8
	}
	out := &FlowResult{}

	// Model-generated testbench (coverage-lossy).
	tbResp, err := model.Generate(llm.Request{
		System: llm.SystemVerilogDesigner,
		Prompt: llm.BuildTestbenchPrompt(p.Spec, ""),
		Task: llm.TestbenchGen{
			ProblemID: p.ID, Spec: p.Spec,
			Header: p.TBHeader, VectorBlocks: p.TBBlocks, Footer: p.TBFooter,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("autochip: testbench generation failed: %w", err)
	}
	ownTB := tbResp.Text
	out.OwnTBChecks = strings.Count(ownTB, "$check_eq")

	evalOwn := func(src string) Candidate {
		c := Candidate{Source: src}
		// The model's own bench is fixed for the whole loop: simfarm
		// compiles it once and only the candidate half changes per round.
		res, err := simfarm.RunTestbench(src, ownTB, "tb", sim)
		if err != nil {
			c.Verdict = core.Verdict{Compiled: false, Log: err.Error()}
			c.Feedback = err.Error()
			return c
		}
		c.Verdict = core.Verdict{Compiled: true, Checks: res.Checks, Failures: res.Failures, Log: res.Output}
		if res.RuntimeErr != nil {
			c.Verdict.Log += "\n" + res.RuntimeErr.Error()
			if c.Verdict.Failures == 0 {
				c.Verdict.Failures = 1
			}
		}
		if !c.Verdict.Pass() {
			c.Feedback = summarizeFeedback(c.Verdict.Log)
		}
		return c
	}

	var prev *Candidate
	stall := 0
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out.Rounds = round + 1
		task := llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty}
		if prev != nil {
			task.PrevAttempt = prev.Source
			task.Feedback = prev.Feedback
		}
		resp, err := model.Generate(llm.Request{
			System: llm.SystemVerilogDesigner,
			Prompt: llm.BuildDesignPrompt(p.Spec),
			Task:   task,
		})
		if err != nil {
			return nil, err
		}
		cand := evalOwn(resp.Text)
		if cand.Verdict.Pass() {
			// The model believes it is done; validate with the reference
			// bench (the "human" checking the result).
			ref := Evaluate(p, cand.Source, sim)
			if ref.Verdict.Pass() {
				out.Solved = true
				return out, nil
			}
			// Own testbench missed a bug: a human supplies real feedback.
			out.HumanInterventions++
			cand.Feedback = ref.Feedback
			stall = 0
		} else if prev != nil && cand.Verdict.PassFraction() <= prev.Verdict.PassFraction() {
			stall++
			if stall >= 3 {
				// Stuck for several rounds: human intervention with the
				// reference bench's diagnosis.
				out.HumanInterventions++
				ref := Evaluate(p, cand.Source, sim)
				cand.Feedback = ref.Feedback
				stall = 0
			}
		} else {
			stall = 0
		}
		prev = &cand
	}
	return out, nil
}
