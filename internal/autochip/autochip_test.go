package autochip

import (
	"context"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

func TestEvaluateReference(t *testing.T) {
	p := benchset.ByID("adder4")
	c := Evaluate(p, p.Reference, verilog.SimOptions{})
	if !c.Verdict.Pass() {
		t.Fatalf("reference fails: %+v", c.Verdict)
	}
	if c.Feedback != "" {
		t.Errorf("passing candidate has feedback %q", c.Feedback)
	}
}

func TestEvaluateBrokenCandidate(t *testing.T) {
	p := benchset.ByID("adder4")
	broken := "module adder4(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);\n" +
		"  assign {cout, sum} = a - b + cin;\nendmodule\n"
	c := Evaluate(p, broken, verilog.SimOptions{})
	if c.Verdict.Pass() {
		t.Fatal("broken candidate passes")
	}
	if c.Feedback == "" {
		t.Error("no feedback for failing candidate")
	}
}

func TestEvaluateSyntaxError(t *testing.T) {
	p := benchset.ByID("adder4")
	c := Evaluate(p, "module adder4(input a; endmodule", verilog.SimOptions{})
	if c.Verdict.Compiled {
		t.Error("syntax error marked compiled")
	}
	if c.Feedback == "" {
		t.Error("no compiler feedback")
	}
}

func TestRunSolvesEasyProblem(t *testing.T) {
	p := benchset.ByID("and4")
	res, err := Run(context.Background(), p, Options{
		Model: llm.NewSimModel(llm.TierFrontier, 2),
		K:     3,
		Depth: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("frontier model failed and4: %+v", res.Best.Verdict)
	}
	if res.TokensIn == 0 || res.TokensOut == 0 {
		t.Error("token accounting missing")
	}
}

func TestFeedbackHelpsFrontierMoreThanSmall(t *testing.T) {
	// Depth>1 (feedback) vs pure sampling at equal candidate budget:
	// the frontier model gains more from feedback — the paper's central
	// AutoChip finding.
	solveRate := func(tier llm.Tier, k, depth int, seeds int) float64 {
		solved := 0
		total := 0
		for _, p := range benchset.Suite() {
			if p.Difficulty < 3 {
				continue // feedback dynamics show on the harder problems
			}
			for s := 0; s < seeds; s++ {
				res, err := Run(context.Background(), p, Options{
					Model: llm.NewSimModel(tier, uint64(s)*1000+7),
					K:     k,
					Depth: depth,
				})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				total++
				if res.Solved {
					solved++
				}
			}
		}
		return float64(solved) / float64(total)
	}
	// Budget 6 candidates each way.
	frontierFeedback := solveRate(llm.TierFrontier, 1, 6, 2)
	frontierSampling := solveRate(llm.TierFrontier, 6, 1, 2)
	if frontierFeedback < frontierSampling {
		t.Errorf("frontier: feedback %.2f < sampling %.2f; AutoChip dynamic inverted",
			frontierFeedback, frontierSampling)
	}
}

func TestStructuredFlow(t *testing.T) {
	solvedNoHuman := 0
	for _, p := range benchset.EightDesignSet() {
		res, err := StructuredFlow(context.Background(), p, llm.NewSimModel(llm.TierLarge, 13), 8, verilog.SimOptions{})
		if err != nil {
			t.Fatalf("StructuredFlow(%s): %v", p.ID, err)
		}
		if res.Solved && res.HumanInterventions == 0 {
			solvedNoHuman++
		}
		if res.OwnTBChecks == 0 {
			t.Errorf("%s: generated testbench has no checks", p.ID)
		}
	}
	// The paper: about half the GPT-4 runs needed no human feedback.
	if solvedNoHuman < 2 {
		t.Errorf("only %d/8 designs solved without human feedback", solvedNoHuman)
	}
}
