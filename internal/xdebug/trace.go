package xdebug

import (
	"fmt"

	"llm4eda/internal/verilog"
)

// rtlTrace is the reconstructed per-epoch view of the watched signals.
// The probe reports transitions only, so reconstruction carries values
// forward from all-X: vals[e][oi] is the value at the END of epoch e
// whether or not the signal committed during it.
type rtlTrace struct {
	vals [][]verilog.Value
	// lines[e][oi] is the source line of the last commit to observable
	// oi within epoch e (0 = no commit that epoch).
	lines [][]int32
	// seqs[e][oi] is the global event order of that last commit (-1 = no
	// commit). The localizer uses it to pick the divergent observable
	// whose wrong value appeared first within the epoch — upstream of
	// anything it then corrupted.
	seqs [][]int
}

// traceRTL compiles candidate+bench, simulates with the commit probe
// attached, and reconstructs the aligned trace. The returned SimResult
// carries any runtime fault; compile errors return as err.
func (h *Harness) traceRTL(candidate string) (*rtlTrace, *verilog.SimResult, error) {
	cd, err := verilog.CompileSources(benchTop, candidate, h.bench)
	if err != nil {
		return nil, nil, err
	}
	// Alignment: watched hierarchical names -> observable index. An
	// XAlign internal signal a candidate restructured away is skipped;
	// output ports always elaborate (the bench connects them).
	watch := map[verilog.SignalID]int{}
	for oi, ob := range h.obs {
		sig, ok := cd.Design.SignalByName(benchTop + "." + benchInst + "." + ob.signal)
		if !ok {
			if ob.port {
				return nil, nil, fmt.Errorf("xdebug: candidate lacks output signal %q", ob.signal)
			}
			continue
		}
		watch[sig.ID] = oi
	}

	type probeEv struct {
		epoch, oi int
		v         verilog.Value
		line      int32
	}
	var evs []probeEv
	n := len(h.vectors)
	sim := verilog.NewSimulator(cd.Design, verilog.SimOptions{})
	sim.SetProbe(func(t uint64, sig verilog.SignalID, word int, line int32, v verilog.Value) {
		oi, ok := watch[sig]
		if !ok || word != 0 {
			return
		}
		e := int(t)
		if e >= n {
			e = n - 1
		}
		evs = append(evs, probeEv{epoch: e, oi: oi, v: v, line: line})
	})
	res, err := sim.Run()
	if err != nil {
		return nil, nil, err
	}

	tr := &rtlTrace{
		vals:  make([][]verilog.Value, n),
		lines: make([][]int32, n),
		seqs:  make([][]int, n),
	}
	cur := make([]verilog.Value, len(h.obs))
	for oi, ob := range h.obs {
		cur[oi] = verilog.AllX(ob.width)
	}
	ei := 0
	for e := 0; e < n; e++ {
		tr.lines[e] = make([]int32, len(h.obs))
		tr.seqs[e] = make([]int, len(h.obs))
		for oi := range h.obs {
			tr.seqs[e][oi] = -1
		}
		// Events arrive in time order and epoch clamping preserves it.
		for ; ei < len(evs) && evs[ei].epoch == e; ei++ {
			x := evs[ei]
			cur[x.oi] = x.v
			tr.lines[e][x.oi] = x.line
			tr.seqs[e][x.oi] = ei
		}
		tr.vals[e] = make([]verilog.Value, len(h.obs))
		copy(tr.vals[e], cur)
	}
	return tr, res, nil
}
