package xdebug

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

// combProblems returns the suite's cross-level-debuggable problems.
func combProblems() []*benchset.Problem {
	var out []*benchset.Problem
	for _, p := range benchset.Suite() {
		if p.CModel != "" && len(p.Ports) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// The reference implementations must trace cross-level clean: any
// diagnosis here is a false divergence in the alignment model itself.
func TestReferenceTracesAlign(t *testing.T) {
	for _, p := range combProblems() {
		h, err := NewHarness(p, "", 24)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if diag := h.Diagnose(p.Reference); diag != nil {
			t.Errorf("%s: reference diverges: %s", p.ID, diag.Feedback())
		}
	}
}

// The localization corpus: every deterministic mutant that diverges at
// all must localize to the injected line, >= 90% of the time, across at
// least 10 problems.
func TestMutationCorpusLocalization(t *testing.T) {
	contributing := map[string]bool{}
	divergent, hits := 0, 0
	for _, p := range combProblems() {
		h, err := NewHarness(p, "", 24)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		for _, m := range Mutants(p.Reference) {
			diag := h.Diagnose(m.Source)
			if diag == nil {
				continue // behavior-preserving mutant
			}
			if diag.Outcome != OutcomeDiverged {
				t.Errorf("%s %s L%d: unexpected outcome %s: %s",
					p.ID, m.Class, m.Line, diag.Outcome, diag.Fault)
				continue
			}
			divergent++
			contributing[p.ID] = true
			if diag.SuspectLine == m.Line {
				hits++
			} else {
				t.Logf("%s %s (%s): injected L%d, localized L%d (%s=%q)",
					p.ID, m.Class, m.Detail, m.Line, diag.SuspectLine, diag.Variable, diag.SuspectStmt)
			}
		}
	}
	if len(contributing) < 10 {
		t.Fatalf("only %d problems contributed divergent mutants, want >= 10", len(contributing))
	}
	if divergent == 0 {
		t.Fatal("no divergent mutants")
	}
	acc := float64(hits) / float64(divergent)
	t.Logf("localization accuracy: %d/%d = %.1f%% over %d problems",
		hits, divergent, 100*acc, len(contributing))
	if acc < 0.9 {
		t.Fatalf("localization accuracy %.1f%% below 90%% (%d/%d)", 100*acc, hits, divergent)
	}
}

// Mutants must be deterministic and syntactically valid — the corpus is
// ground truth, so a non-compiling mutant would poison the accuracy
// denominator.
func TestMutantsDeterministicAndWellFormed(t *testing.T) {
	for _, p := range combProblems() {
		a, b := Mutants(p.Reference), Mutants(p.Reference)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic mutant count", p.ID)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: mutant %d differs between runs", p.ID, i)
			}
			if _, err := verilog.Parse(a[i].Source); err != nil {
				t.Errorf("%s %s L%d: mutant does not parse: %v", p.ID, a[i].Class, a[i].Line, err)
			}
			if a[i].Source == p.Reference {
				t.Errorf("%s %s L%d: mutant identical to reference", p.ID, a[i].Class, a[i].Line)
			}
		}
	}
}

// A C-model fault during tracing (the CPUErr analogue) must surface as a
// structured c-fault diagnosis, not as a skipped vector.
func TestCModelFaultBecomesDiagnosis(t *testing.T) {
	p := benchset.ByID("sub8")
	// borrow divides by input a; the first stimulus corner is all-zeros,
	// so epoch 0 faults.
	cModel := `
int diff(int a, int b) { return (a - b) & 255; }
int borrow(int a, int b) { return 100 / a; }`
	h, err := NewHarness(p, cModel, 8)
	if err != nil {
		t.Fatal(err)
	}
	diag := h.Diagnose(p.Reference)
	if diag == nil {
		t.Fatal("expected a diagnosis")
	}
	if diag.Outcome != OutcomeCFault {
		t.Fatalf("outcome = %s, want %s", diag.Outcome, OutcomeCFault)
	}
	if diag.Epoch != 0 || diag.Variable != "borrow" {
		t.Fatalf("fault cell = (%d, %s), want (0, borrow)", diag.Epoch, diag.Variable)
	}
	if !strings.Contains(diag.Fault, "division by zero") {
		t.Fatalf("fault = %q, want division by zero", diag.Fault)
	}
	if fb := diag.Feedback(); !strings.Contains(fb, "high-level model fault") {
		t.Fatalf("feedback = %q", fb)
	}
}

// XAlign internal signals must win localization when an internal stage
// is the first to go wrong.
func TestXAlignLocalizesInternalStage(t *testing.T) {
	p := benchset.ByID("satadd8")
	if p.XAlign["full"] == "" {
		t.Fatal("satadd8 lost its XAlign entry")
	}
	lines := strings.Split(p.Reference, "\n")
	target := 0
	for i, ln := range lines {
		if strings.Contains(ln, "full = a + b") {
			target = i + 1
			lines[i] = strings.Replace(ln, "a + b", "a - b", 1)
		}
	}
	if target == 0 {
		t.Fatal("satadd8 reference changed shape")
	}
	h, err := NewHarness(p, "", 24)
	if err != nil {
		t.Fatal(err)
	}
	diag := h.Diagnose(strings.Join(lines, "\n"))
	if diag == nil {
		t.Fatal("expected a divergence")
	}
	if diag.Variable != "full" {
		t.Fatalf("variable = %s, want the internal stage 'full'", diag.Variable)
	}
	if diag.SuspectLine != target {
		t.Fatalf("suspect line = %d, want %d", diag.SuspectLine, target)
	}
}

// The guided-repair loop must converge a mutated design back to
// trace-identical RTL within the round budget.
func TestRepairLoopConverges(t *testing.T) {
	p := benchset.ByID("alu8")
	ms := Mutants(p.Reference)
	if len(ms) == 0 {
		t.Fatal("no mutants")
	}
	res, err := Debug(context.Background(), p, ms[0].Source, Options{
		Model:  llm.NewSimModel(llm.TierFrontier, 1),
		Rounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Localized {
		t.Error("no round localized a suspect statement")
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds; last: %v", len(res.Rounds), res.Diag)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if !last.TBPassed {
		t.Error("converged candidate fails the reference testbench")
	}
	if res.TokensOut == 0 {
		t.Error("no repair tokens accounted")
	}
}

// Compile errors must pass through Feedback verbatim so the simulated
// model routes them to syntactic repair.
func TestCompileErrorFeedback(t *testing.T) {
	p := benchset.ByID("and4")
	h, err := NewHarness(p, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	diag := h.Diagnose("module and4(input a, output y) garbage")
	if diag == nil || diag.Outcome != OutcomeCompile {
		t.Fatalf("diag = %+v, want compile-error", diag)
	}
	fb := diag.Feedback()
	if !strings.Contains(fb, "error") {
		t.Fatalf("feedback %q lacks the front-end error", fb)
	}
}
