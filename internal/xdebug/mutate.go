package xdebug

import (
	"fmt"
	"strconv"
	"strings"
)

// Mutation is one deterministic single-line fault injected into an RTL
// source — the localization corpus's ground truth.
type Mutation struct {
	// Class is the fault class: "swap-op", "swap-arms", "const-off" or
	// "drop-reset".
	Class string
	// Line is the 1-based mutated source line — the localizer's target.
	Line   int
	Detail string
	// Source is the full mutated RTL.
	Source string
}

// opSwaps enumerates operator substitutions in priority order; the first
// match on a line wins, so every line yields at most one swap-op mutant.
// Operators are space-delimited as the benchset references write them,
// which also keeps "<" clear of "<<" and "<=".
var opSwaps = [][2]string{
	{" + ", " - "}, {" - ", " + "}, {" * ", " + "},
	{" & ", " | "}, {" | ", " & "}, {" ^ ", " & "},
	{" << ", " >> "}, {" >> ", " << "},
	{" == ", " != "}, {" != ", " == "},
	{" < ", " > "}, {" > ", " < "},
}

// Mutants deterministically enumerates single-fault variants of an RTL
// source: operator swaps, ternary-arm swaps and constant off-by-ones on
// the right-hand side of assignments, plus dropped-reset faults on
// `if (rst...)` guards. Mutating only past the assignment's `=` keeps
// the committing statement identical to the mutated line, which is what
// lets the corpus test compare the localizer's verdict against the
// injection site exactly.
func Mutants(src string) []Mutation {
	lines := strings.Split(src, "\n")
	var out []Mutation
	add := func(class string, i int, nl, detail string) {
		cp := make([]string, len(lines))
		copy(cp, lines)
		cp[i] = nl
		out = append(out, Mutation{
			Class: class, Line: i + 1, Detail: detail,
			Source: strings.Join(cp, "\n"),
		})
	}
	for i, ln := range lines {
		eq := assignIdx(ln)
		if eq >= 0 {
			tail := ln[eq+1:]
			for _, sw := range opSwaps {
				j := strings.Index(tail, sw[0])
				if j < 0 {
					continue
				}
				add("swap-op", i, ln[:eq+1]+tail[:j]+sw[1]+tail[j+len(sw[0]):],
					fmt.Sprintf("%q -> %q", strings.TrimSpace(sw[0]), strings.TrimSpace(sw[1])))
				break
			}
			if q := strings.Index(tail, " ? "); q >= 0 {
				if c := ternColon(tail, q+3); c > 0 {
					if end := strings.LastIndex(tail, ";"); end > c {
						arm1, arm2 := tail[q+3:c], tail[c+3:end]
						add("swap-arms", i, ln[:eq+1]+tail[:q+3]+arm2+tail[c:c+3]+arm1+tail[end:],
							"ternary arms swapped")
					}
				}
			}
			if sp := firstNum(tail); sp != nil {
				nk := sp.val - 1
				if sp.val == 0 {
					nk = 1
				}
				add("const-off", i,
					ln[:eq+1]+tail[:sp.start]+strconv.FormatUint(nk, 10)+tail[sp.end:],
					fmt.Sprintf("%d -> %d", sp.val, nk))
			}
		}
		// drop-reset is independent of assignments: it blanks the reset
		// guard so the register never initializes.
		if strings.Contains(ln, "rst") {
			if k := strings.Index(ln, "if ("); k >= 0 {
				depth, close := 0, -1
				for j := k + 3; j < len(ln); j++ {
					if ln[j] == '(' {
						depth++
					} else if ln[j] == ')' {
						depth--
						if depth == 0 {
							close = j
							break
						}
					}
				}
				if close > 0 {
					add("drop-reset", i, ln[:k]+"if (1'b0)"+ln[close+1:], "reset guard dropped")
				}
			}
		}
	}
	return out
}

// assignIdx finds the assignment '=' on a line, skipping the comparison
// and non-blocking forms (==, !=, <=, >=). Returns -1 when the line is
// not a blocking assignment or continuous assign.
func assignIdx(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] != '=' {
			continue
		}
		if i+1 < len(s) && s[i+1] == '=' {
			i++
			continue
		}
		if i > 0 {
			switch s[i-1] {
			case '=', '!', '<', '>':
				continue
			}
		}
		return i
	}
	return -1
}

// ternColon finds the " : " matching the ternary's " ? ", honoring
// bracket depth and nested ternaries. Returns -1 when absent.
func ternColon(s string, from int) int {
	depth, qd := 0, 0
	for i := from; i < len(s); i++ {
		switch s[i] {
		case '(', '{', '[':
			depth++
		case ')', '}', ']':
			depth--
		}
		if depth != 0 || i+3 > len(s) {
			continue
		}
		switch s[i : i+3] {
		case " ? ":
			qd++
		case " : ":
			if qd == 0 {
				return i
			}
			qd--
		}
	}
	return -1
}

type numSpan struct {
	start, end int
	val        uint64
}

// firstNum finds the first mutable numeric token: the value digits of a
// sized decimal literal (8'd255) or a bare decimal (a part-select bound
// or plain constant). Identifiers and non-decimal based literals (1'b0,
// 8'hFF) are skipped whole.
func firstNum(s string) *numSpan {
	isIdent := func(c byte) bool {
		return c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			for i < len(s) && isIdent(s[i]) {
				i++
			}
		case c == '\'':
			// Unsized based literal: skip base char and value run.
			i++
			if i < len(s) {
				i++
			}
			for i < len(s) && isIdent(s[i]) {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j < len(s) && s[j] == '\'' {
				base := byte(0)
				if j+1 < len(s) {
					base = s[j+1]
				}
				if base == 'd' || base == 'D' {
					vs := j + 2
					ve := vs
					for ve < len(s) && ((s[ve] >= '0' && s[ve] <= '9') || s[ve] == '_') {
						ve++
					}
					if ve > vs {
						v, err := strconv.ParseUint(strings.ReplaceAll(s[vs:ve], "_", ""), 10, 32)
						if err == nil {
							return &numSpan{start: vs, end: ve, val: v}
						}
					}
					i = ve
					continue
				}
				// Binary/hex/octal: skip the whole literal.
				i = j + 2
				for i < len(s) && isIdent(s[i]) {
					i++
				}
				continue
			}
			v, err := strconv.ParseUint(s[i:j], 10, 32)
			if err == nil {
				return &numSpan{start: i, end: j, val: v}
			}
			i = j
		default:
			i++
		}
	}
	return nil
}
