package xdebug

import (
	"context"
	"fmt"

	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// Options configure one debug session.
type Options struct {
	RunSpec core.RunSpec
	// Model powers guided repair; nil runs a single diagnose-only round.
	Model llm.Model
	// Rounds bounds the loop: up to Rounds diagnoses with a repair
	// generation after each except the last (default 6).
	Rounds int
	// Vectors bounds the stimuli (default 24).
	Vectors int
	// Temperature for repair generations.
	Temperature float64
}

// Round records one iteration of the debug loop.
type Round struct {
	N int
	// TBPassed is the reference-testbench cosimulation verdict for the
	// round's candidate (independent evidence next to the trace compare).
	TBPassed bool
	// Diag is the round's diagnosis; nil when the traces aligned.
	Diag *Diagnosis
	// Repaired marks that a repair generation followed this round.
	Repaired bool
}

// Result is one full debug session.
type Result struct {
	Problem string
	// Converged: the final candidate's RTL trace matches the C model on
	// every vector.
	Converged bool
	// Localized: at least one round pinned a concrete suspect statement.
	Localized bool
	Rounds    []Round
	// Final is the last candidate (the repaired RTL on convergence).
	Final string
	// Diag is the last unresolved diagnosis (nil when converged).
	Diag      *Diagnosis
	TokensIn  int
	TokensOut int
}

// Debug runs the cross-level debug loop on a candidate: trace, align,
// localize, repair, re-cosimulate — until the traces match or the round
// budget expires.
func Debug(ctx context.Context, p *benchset.Problem, candidate string, opts Options) (*Result, error) {
	h, err := NewHarness(p, "", opts.Vectors)
	if err != nil {
		return nil, err
	}
	return h.Debug(ctx, candidate, opts)
}

// Diagnose traces one candidate and localizes the first divergence
// (nil = cross-level clean). Compile and simulation faults surface as
// structured diagnoses so the repair loop can react to them uniformly.
func (h *Harness) Diagnose(candidate string) *Diagnosis {
	tr, simres, err := h.traceRTL(candidate)
	if err != nil {
		return &Diagnosis{Problem: h.Problem.ID, Outcome: OutcomeCompile, Fault: err.Error()}
	}
	if simres.RuntimeErr != nil {
		return &Diagnosis{Problem: h.Problem.ID, Outcome: OutcomeSimFault, Fault: simres.RuntimeErr.Error()}
	}
	return h.localize(tr, candidate)
}

// Debug runs the loop against a prebuilt harness (the batch entry point:
// one harness serves every candidate of a problem).
func (h *Harness) Debug(ctx context.Context, candidate string, opts Options) (*Result, error) {
	opts.RunSpec = opts.RunSpec.WithDefaults()
	total := opts.Rounds
	if total <= 0 {
		total = 6
	}
	if opts.Model == nil {
		total = 1
	}
	sink := core.SinkOf(ctx)
	res := &Result{Problem: h.Problem.ID, Final: candidate}
	for round := 1; round <= total; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sink.Emit(core.Event{Kind: core.EventPhaseStart, Framework: "xdebug",
			Phase: "round", Seq: round, Total: total})

		diag := h.Diagnose(candidate)
		if diag != nil {
			diag.Round = round
		}
		// Reference-testbench cosimulation rides along as independent
		// evidence (and is what "repaired" means to the rest of the
		// suite, beyond trace identity).
		tbRes, err := simfarm.RunManyCtx(ctx, []simfarm.Job{{
			DUT: candidate, TB: h.Problem.Testbench(), Top: "tb",
			DUTTop: h.Problem.TopModule, Lint: true,
			Opts: verilog.SimOptions{Seed: opts.RunSpec.Seed},
		}}, 1)
		if err != nil {
			return res, err
		}
		r := Round{N: round, TBPassed: tbRes[0].Passed(), Diag: diag}

		ev := core.Event{Kind: core.EventCandidate, Framework: "xdebug",
			Phase: "diagnosis", Seq: round, Total: total}
		if diag == nil {
			ev.OK = true
			ev.Detail = fmt.Sprintf("%s: traces aligned over %d vectors (tb pass=%v)",
				h.Problem.ID, len(h.vectors), r.TBPassed)
		} else {
			ev.Detail = fmt.Sprintf("%s: %s: %s", h.Problem.ID, diag.Outcome, head(diag.Feedback(), 200))
		}
		sink.Emit(ev)

		if diag == nil {
			res.Converged = true
			res.Diag = nil
			res.Rounds = append(res.Rounds, r)
			sink.Emit(core.Event{Kind: core.EventPhaseEnd, Framework: "xdebug",
				Phase: "round", Seq: round, Total: total, OK: true})
			return res, nil
		}
		if diag.Outcome == OutcomeDiverged && diag.SuspectLine > 0 {
			res.Localized = true
		}
		res.Diag = diag

		if opts.Model != nil && round < total {
			resp, err := opts.Model.Generate(llm.Request{
				System: llm.SystemVerilogDesigner,
				Prompt: llm.BuildTraceRepairPrompt(h.Problem.Spec, candidate, diag.Feedback()),
				Task: llm.VerilogGen{
					ProblemID: h.Problem.ID, Spec: h.Problem.Spec,
					Reference: h.Problem.Reference, Difficulty: h.Problem.Difficulty,
					PrevAttempt: candidate, Feedback: diag.Feedback(),
				},
				Temperature: opts.Temperature,
			})
			if err != nil {
				res.Rounds = append(res.Rounds, r)
				return res, err
			}
			res.TokensIn += resp.TokensIn
			res.TokensOut += resp.TokensOut
			sink.Emit(core.Event{Kind: core.EventLLMCall, Framework: "xdebug",
				Phase: "verilog-gen", Seq: round, TokensIn: resp.TokensIn, TokensOut: resp.TokensOut})
			candidate = resp.Text
			res.Final = candidate
			r.Repaired = true
		}
		res.Rounds = append(res.Rounds, r)
		sink.Emit(core.Event{Kind: core.EventPhaseEnd, Framework: "xdebug",
			Phase: "round", Seq: round, Total: total})
	}
	return res, nil
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
