// Package xdebug is the cross-level RTL debugger: it aligns a statement-
// level trace of an untimed C behavioral model against a signal-level
// trace of an RTL candidate, localizes the first divergent (epoch,
// variable) pair, and feeds the resulting structured diagnosis into a
// guided-repair loop (the paper's §VI "High-Level Guided RTL Debugging"
// direction, carried past crosscheck's pass/fail verdicts to *where* and
// *why*).
//
// The two traces come from instrumented executions: the verilog
// simulator's commit-time probe (verilog.SetProbe) yields every signal
// transition with the source line of the committing statement, and the
// chdl interpreter's TraceAll hook yields every C variable write. The
// alignment model is epoch-based: stimulus vector i is driven at
// simulation time i and the design settles within that time step, so
// epoch i's end-of-step RTL values compare against the C functions
// evaluated on vector i. Because the probe reports transitions only,
// trace reconstruction carries values forward across epochs — a stuck
// output still diverges even though it never re-commits.
//
// Alignment covers output ports by name matching (each C function is
// named after the port it models) and extends to internal signals
// through the per-problem benchset.Problem.XAlign override table, so a
// divergence inside a multi-stage design localizes to the first wrong
// stage rather than the final output. XAlign C functions take the input
// ports in declaration order, exactly like the output functions.
package xdebug

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/chdl"
	"llm4eda/internal/verilog"
)

// Diagnosis outcomes.
const (
	// OutcomeDiverged: the traces diverge and a suspect statement was
	// localized.
	OutcomeDiverged = "diverged"
	// OutcomeCompile: the candidate does not compile; Fault carries the
	// front-end error verbatim.
	OutcomeCompile = "compile-error"
	// OutcomeSimFault: the candidate's simulation raised a runtime fault.
	OutcomeSimFault = "sim-fault"
	// OutcomeCFault: the C model itself faulted on a stimulus vector
	// (division by zero and friends). Surfaced as a diagnosis rather
	// than a silently skipped vector.
	OutcomeCFault = "c-fault"
)

// WavePoint is one epoch of the expected-vs-actual waveform window
// around a divergence.
type WavePoint struct {
	Epoch    int
	Expected int64
	Actual   uint64
	Known    bool // false when the RTL value carried X bits
	Diverged bool
}

// CStep is one traced C-variable write while evaluating the divergent
// observable on the divergent vector.
type CStep struct {
	Line int
	Name string
	V    int64
}

// Diagnosis is the structured outcome of one debug round: the first
// cross-level divergence with enough evidence (waveform window, C trace,
// suspect statement) for a guided repair prompt.
type Diagnosis struct {
	Problem string
	Round   int
	Outcome string

	// Epoch is the stimulus vector index of the first divergence (or of
	// the C fault for OutcomeCFault).
	Epoch int
	// Variable is the C-level name; Signal the aligned RTL signal
	// relative to the DUT instance.
	Variable string
	Signal   string
	// Inputs are the driven input-port values at the divergent epoch.
	Inputs map[string]uint64

	Expected    int64
	Actual      uint64
	ActualKnown bool

	// SuspectLine/SuspectStmt point at the candidate statement that last
	// committed the divergent signal (1-based line; 0 = unknown).
	SuspectLine int
	SuspectStmt string

	// Window is the expected-vs-actual waveform around the divergence.
	Window []WavePoint
	// CTrace is the statement-level C execution on the divergent cell.
	CTrace []CStep

	// Fault carries the error message for the non-diverged outcomes.
	Fault string
}

// Feedback renders the diagnosis as repair-loop feedback. Compile errors
// pass through verbatim (their "syntax error"/"lex error"/"elaboration
// error" wording routes the simulated model to syntactic repair); all
// other outcomes deliberately avoid those phrases so they route to
// functional repair.
func (d *Diagnosis) Feedback() string {
	switch d.Outcome {
	case OutcomeCompile:
		return d.Fault
	case OutcomeSimFault:
		return "simulation fault: " + d.Fault
	case OutcomeCFault:
		return fmt.Sprintf("high-level model fault at vector %d computing %s: %s",
			d.Epoch, d.Variable, d.Fault)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cross-level divergence at vector %d (%s): %s expected %d, RTL produced ",
		d.Epoch, formatInputs(d.Inputs), d.Variable, d.Expected)
	if d.ActualKnown {
		fmt.Fprintf(&b, "%d", d.Actual)
	} else {
		b.WriteString("x")
	}
	if d.SuspectLine > 0 {
		fmt.Fprintf(&b, "; suspect statement (line %d): %s", d.SuspectLine, d.SuspectStmt)
	}
	if len(d.Window) > 0 {
		b.WriteString("; expected/actual window:")
		for _, w := range d.Window {
			mark := ""
			if w.Diverged {
				mark = "!"
			}
			if w.Known {
				fmt.Fprintf(&b, " v%d=%d/%d%s", w.Epoch, w.Expected, w.Actual, mark)
			} else {
				fmt.Fprintf(&b, " v%d=%d/x%s", w.Epoch, w.Expected, mark)
			}
		}
	}
	return b.String()
}

func formatInputs(in map[string]uint64) string {
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, in[n])
	}
	return strings.Join(parts, " ")
}

// observable is one aligned C-variable/RTL-signal pair.
type observable struct {
	name   string // C function name (and diagnosis variable name)
	signal string // RTL signal relative to the DUT instance
	width  int    // reference width (masks both sides of the compare)
	port   bool   // output port vs XAlign internal signal
}

// cell is one entry of the expected table: the C model's value, or the
// fault it raised computing it.
type cell struct {
	v       int64
	errMsg  string
	errLine int
}

// Harness is the candidate-independent half of a debug session: parsed C
// model, stimulus vectors, generated trace bench and the per-epoch
// expected table. Build once per problem, trace many candidates.
type Harness struct {
	Problem *benchset.Problem
	CModel  string

	prog    *chdl.Program
	inputs  []benchset.Port
	obs     []observable
	vectors []map[string]uint64
	bench   string
	want    [][]cell // [epoch][observable]
}

// NewHarness builds the debug harness for a combinational problem.
// cModel overrides the problem's bundled C model when non-empty;
// nVectors bounds the stimuli (default 24).
func NewHarness(p *benchset.Problem, cModel string, nVectors int) (*Harness, error) {
	if p == nil {
		return nil, fmt.Errorf("xdebug: nil problem")
	}
	if cModel == "" {
		cModel = p.CModel
	}
	if cModel == "" {
		return nil, fmt.Errorf("xdebug: problem %q has no behavioral reference", p.ID)
	}
	if len(p.Ports) == 0 {
		return nil, fmt.Errorf("xdebug: problem %q is not combinational", p.ID)
	}
	if nVectors <= 0 {
		nVectors = 24
	}
	prog, err := chdl.ParseC(cModel)
	if err != nil {
		return nil, fmt.Errorf("xdebug: C model does not parse: %w", err)
	}

	h := &Harness{Problem: p, CModel: cModel, prog: prog}
	var outputs []benchset.Port
	for _, port := range p.Ports {
		if port.IsInput {
			h.inputs = append(h.inputs, port)
		} else {
			outputs = append(outputs, port)
		}
	}
	for _, out := range outputs {
		if prog.FindFunc(out.Name) == nil {
			return nil, fmt.Errorf("xdebug: C model lacks a function for output %q", out.Name)
		}
		h.obs = append(h.obs, observable{name: out.Name, signal: out.Name, width: out.Width, port: true})
	}

	h.vectors = stimuli(h.inputs, nVectors)
	h.bench = buildBench(p.TopModule, h.inputs, outputs, h.vectors)

	// Resolve XAlign internal observables against the reference design:
	// the override table promises the signal exists there, and its
	// reference width masks the compare.
	if len(p.XAlign) > 0 {
		ref, err := verilog.CompileSources(benchTop, p.Reference, h.bench)
		if err != nil {
			return nil, fmt.Errorf("xdebug: reference does not elaborate: %w", err)
		}
		names := make([]string, 0, len(p.XAlign))
		for n := range p.XAlign {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if prog.FindFunc(n) == nil {
				return nil, fmt.Errorf("xdebug: C model lacks XAlign function %q", n)
			}
			sig, ok := ref.Design.SignalByName(benchTop + "." + benchInst + "." + p.XAlign[n])
			if !ok {
				return nil, fmt.Errorf("xdebug: reference lacks XAlign signal %q", p.XAlign[n])
			}
			h.obs = append(h.obs, observable{name: n, signal: p.XAlign[n], width: sig.Width})
		}
	}

	// Expected table: one fresh interpreter per cell (globals persist
	// across calls otherwise). A faulting cell is recorded as data, not
	// a harness error — the debug loop surfaces it as a diagnosis.
	h.want = make([][]cell, len(h.vectors))
	for vi := range h.vectors {
		h.want[vi] = make([]cell, len(h.obs))
		args := h.args(vi)
		for oi, ob := range h.obs {
			interp, err := chdl.NewInterp(prog, chdl.InterpOptions{})
			if err != nil {
				return nil, err
			}
			v, err := interp.CallInts(ob.name, args...)
			if err != nil {
				c := cell{errMsg: err.Error()}
				var rt *chdl.RuntimeError
				if errors.As(err, &rt) {
					c.errLine, c.errMsg = rt.Line, rt.Msg
				}
				h.want[vi][oi] = c
				continue
			}
			h.want[vi][oi] = cell{v: v & int64(maskBits(ob.width))}
		}
	}
	return h, nil
}

// args builds the C call arguments (input ports in declaration order)
// for one stimulus vector.
func (h *Harness) args(vi int) []int64 {
	args := make([]int64, len(h.inputs))
	for i, in := range h.inputs {
		args[i] = int64(h.vectors[vi][in.Name])
	}
	return args
}

const (
	benchTop  = "xdbg"
	benchInst = "duv"
)

// stimuli produces deterministic corner-plus-random vectors (the same
// shape crosscheck drives, so verdicts are comparable across the two
// frameworks).
func stimuli(inputs []benchset.Port, n int) []map[string]uint64 {
	var out []map[string]uint64
	state := uint64(0xC0FFEE12345678)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	corners := []func(w int) uint64{
		func(int) uint64 { return 0 },
		func(w int) uint64 { return maskBits(w) },
		func(w int) uint64 { return 0x5555555555555555 & maskBits(w) },
		func(int) uint64 { return 1 },
	}
	for _, c := range corners {
		vec := map[string]uint64{}
		for _, in := range inputs {
			vec[in.Name] = c(in.Width)
		}
		out = append(out, vec)
	}
	for len(out) < n {
		vec := map[string]uint64{}
		for _, in := range inputs {
			vec[in.Name] = next() & maskBits(in.Width)
		}
		out = append(out, vec)
	}
	return out
}

// buildBench emits the trace bench: drive vector i at time i, settle one
// time unit. No $display — observation happens through the probe, so
// the bench only has to schedule the stimuli.
func buildBench(top string, inputs, outputs []benchset.Port, vectors []map[string]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s;\n", benchTop)
	var conns []string
	for _, in := range inputs {
		if in.Width > 1 {
			fmt.Fprintf(&b, "  reg [%d:0] %s;\n", in.Width-1, in.Name)
		} else {
			fmt.Fprintf(&b, "  reg %s;\n", in.Name)
		}
		conns = append(conns, fmt.Sprintf(".%s(%s)", in.Name, in.Name))
	}
	for _, out := range outputs {
		if out.Width > 1 {
			fmt.Fprintf(&b, "  wire [%d:0] %s;\n", out.Width-1, out.Name)
		} else {
			fmt.Fprintf(&b, "  wire %s;\n", out.Name)
		}
		conns = append(conns, fmt.Sprintf(".%s(%s)", out.Name, out.Name))
	}
	fmt.Fprintf(&b, "  %s %s(%s);\n", top, benchInst, strings.Join(conns, ", "))
	b.WriteString("  initial begin\n")
	for _, vec := range vectors {
		for _, in := range inputs {
			fmt.Fprintf(&b, "    %s = %d'd%d;\n", in.Name, in.Width, vec[in.Name])
		}
		b.WriteString("    #1;\n")
	}
	b.WriteString("    $finish;\n  end\nendmodule\n")
	return b.String()
}

func maskBits(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
