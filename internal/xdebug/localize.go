package xdebug

import (
	"strings"

	"llm4eda/internal/chdl"
	"llm4eda/internal/verilog"
)

// windowRadius bounds the expected-vs-actual waveform excerpt around a
// divergence (epochs on each side).
const windowRadius = 2

// maxCTrace caps the statement-level C trace carried in a diagnosis.
const maxCTrace = 32

// localize finds the first divergent (epoch, variable) pair and maps it
// back to the candidate's suspect statement. It binary-searches the
// monotone predicate "the aligned traces diverge somewhere in epochs
// [0..k]" for the smallest divergent prefix, then picks, within that
// epoch, the divergent observable whose wrong value was committed first
// (event order), so a corrupted internal stage outranks the outputs it
// poisons. Returns nil when the traces align everywhere.
//
// A C-model fault at or before the first divergence takes precedence:
// the vector never produced a trustworthy expectation, so it surfaces as
// an OutcomeCFault diagnosis instead of a divergence verdict.
func (h *Harness) localize(tr *rtlTrace, candidate string) *Diagnosis {
	n := len(h.vectors)

	// Earliest C-model fault, if any.
	fe, fo := -1, -1
	for e := 0; e < n && fe < 0; e++ {
		for oi := range h.obs {
			if h.want[e][oi].errMsg != "" {
				fe, fo = e, oi
				break
			}
		}
	}

	// Per-epoch divergence matrix and its prefix sums.
	div := make([][]bool, n)
	pre := make([]int, n+1)
	for e := 0; e < n; e++ {
		div[e] = make([]bool, len(h.obs))
		c := 0
		for oi, ob := range h.obs {
			if h.want[e][oi].errMsg != "" {
				continue
			}
			got := tr.vals[e][oi]
			if !got.IsFullyKnown() || int64(got.Uint()&maskBits(ob.width)) != h.want[e][oi].v {
				div[e][oi] = true
				c++
			}
		}
		pre[e+1] = pre[e] + c
	}
	if pre[n] == 0 {
		if fe >= 0 {
			return h.cFaultDiagnosis(fe, fo)
		}
		return nil
	}

	// Binary search the smallest epoch whose aligned prefix diverges.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if pre[mid+1] > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	e := lo
	if fe >= 0 && fe <= e {
		return h.cFaultDiagnosis(fe, fo)
	}

	// First-committed divergent observable in the epoch; observables
	// that only carry a stale wrong value (no in-epoch commit) lose to
	// any that actually committed.
	best, bestSeq := -1, -1
	for oi := range h.obs {
		if !div[e][oi] {
			continue
		}
		seq := tr.seqs[e][oi]
		if best == -1 {
			best, bestSeq = oi, seq
			continue
		}
		if seq >= 0 && (bestSeq < 0 || seq < bestSeq) {
			best, bestSeq = oi, seq
		}
	}

	ob := h.obs[best]
	got := tr.vals[e][best]
	d := &Diagnosis{
		Problem:     h.Problem.ID,
		Outcome:     OutcomeDiverged,
		Epoch:       e,
		Variable:    ob.name,
		Signal:      ob.signal,
		Inputs:      h.vectors[e],
		Expected:    h.want[e][best].v,
		Actual:      got.Uint() & maskBits(ob.width),
		ActualKnown: got.IsFullyKnown(),
	}

	// Suspect statement: the last commit to the signal at or before the
	// divergent epoch; a never-committed signal falls back to a static
	// scan for its driver.
	var line int32
	for k := e; k >= 0 && line == 0; k-- {
		line = tr.lines[k][best]
	}
	if line == 0 {
		line = int32(driverLine(candidate, ob.signal))
	}
	d.SuspectLine = int(line)
	d.SuspectStmt = lineText(candidate, d.SuspectLine)

	// Waveform window around the divergence.
	for k := e - windowRadius; k <= e+windowRadius; k++ {
		if k < 0 || k >= n || h.want[k][best].errMsg != "" {
			continue
		}
		v := tr.vals[k][best]
		d.Window = append(d.Window, WavePoint{
			Epoch:    k,
			Expected: h.want[k][best].v,
			Actual:   v.Uint() & maskBits(ob.width),
			Known:    v.IsFullyKnown(),
			Diverged: div[k][best],
		})
	}

	d.CTrace = h.cTrace(e, best)
	return d
}

// cFaultDiagnosis wraps a C-model fault cell as a structured outcome.
func (h *Harness) cFaultDiagnosis(e, oi int) *Diagnosis {
	c := h.want[e][oi]
	d := &Diagnosis{
		Problem:  h.Problem.ID,
		Outcome:  OutcomeCFault,
		Epoch:    e,
		Variable: h.obs[oi].name,
		Signal:   h.obs[oi].signal,
		Inputs:   h.vectors[e],
		Fault:    c.errMsg,
	}
	if c.errLine > 0 {
		d.SuspectLine = c.errLine
		d.SuspectStmt = lineText(h.CModel, c.errLine)
	}
	return d
}

// cTrace re-executes the divergent cell with full statement-level
// tracing, giving the repair prompt the C model's view of the same
// computation.
func (h *Harness) cTrace(e, oi int) []CStep {
	interp, err := chdl.NewInterp(h.prog, chdl.InterpOptions{})
	if err != nil {
		return nil
	}
	var steps []CStep
	interp.TraceAll = true
	interp.Trace = func(line int, name string, v int64) {
		if len(steps) < maxCTrace {
			steps = append(steps, CStep{Line: line, Name: name, V: v})
		}
	}
	interp.CallInts(h.obs[oi].name, h.args(e)...)
	return steps
}

// driverLine statically scans the candidate for the first statement
// driving the named signal: the fallback when the probe never saw a
// commit (e.g. the driver was dropped entirely).
func driverLine(src, name string) int {
	f, err := verilog.Parse(src)
	if err != nil {
		return 0
	}
	for _, m := range f.Modules {
		for _, it := range m.Items {
			switch n := it.(type) {
			case *verilog.NetDecl:
				if n.Init != nil && n.Name == name {
					return n.Line
				}
			case *verilog.ContAssign:
				if lhsWrites(n.LHS, name) {
					return n.Line
				}
			case *verilog.AlwaysBlock:
				if l := stmtWrites(n.Body, name); l > 0 {
					return l
				}
			}
		}
	}
	return 0
}

// stmtWrites walks a behavioral statement for the first assignment to
// the named signal, returning its line (0 = none).
func stmtWrites(s verilog.Stmt, name string) int {
	switch n := s.(type) {
	case *verilog.Block:
		for _, st := range n.Stmts {
			if l := stmtWrites(st, name); l > 0 {
				return l
			}
		}
	case *verilog.Assign:
		if lhsWrites(n.LHS, name) {
			return n.Line
		}
	case *verilog.IfStmt:
		if l := stmtWrites(n.Then, name); l > 0 {
			return l
		}
		if n.Else != nil {
			return stmtWrites(n.Else, name)
		}
	case *verilog.CaseStmt:
		for _, it := range n.Items {
			if l := stmtWrites(it.Body, name); l > 0 {
				return l
			}
		}
	case *verilog.ForStmt:
		return stmtWrites(n.Body, name)
	case *verilog.WhileStmt:
		return stmtWrites(n.Body, name)
	case *verilog.RepeatStmt:
		return stmtWrites(n.Body, name)
	case *verilog.ForeverStmt:
		return stmtWrites(n.Body, name)
	}
	return 0
}

// lhsWrites reports whether an lvalue expression targets the named
// signal (directly or through a select/concat).
func lhsWrites(e verilog.Expr, name string) bool {
	switch n := e.(type) {
	case *verilog.Ident:
		return n.Name == name
	case *verilog.Index:
		return lhsWrites(n.X, name)
	case *verilog.PartSelect:
		return lhsWrites(n.X, name)
	case *verilog.Concat:
		for _, p := range n.Parts {
			if lhsWrites(p, name) {
				return true
			}
		}
	}
	return false
}

// lineText returns the trimmed 1-based source line (empty if out of
// range).
func lineText(src string, line int) string {
	if line <= 0 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if line > len(lines) {
		return ""
	}
	return strings.TrimSpace(lines[line-1])
}
