// Package rag implements the retrieval substrate of the Fig. 2 repair
// framework: a TF-IDF cosine index over correction templates, plus the
// Levenshtein distance used both for similarity retrieval and for the
// SLT candidate-pool diversity pressure (§V).
package rag

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Template is one entry of the repair library: a named correction recipe
// whose body the LLM receives verbatim in its prompt.
type Template struct {
	Name string
	// Tags are the issue kinds this template addresses (e.g.
	// "dynamic-memory").
	Tags []string
	// Body is the correction recipe text shown to the model.
	Body string
}

// Library is an immutable searchable template collection.
type Library struct {
	templates []Template
	idf       map[string]float64
	vecs      []map[string]float64
}

// NewLibrary indexes the given templates.
func NewLibrary(templates []Template) *Library {
	lib := &Library{templates: templates, idf: map[string]float64{}}
	docFreq := map[string]int{}
	tokenized := make([][]string, len(templates))
	for i, t := range templates {
		toks := Tokenize(t.Name + " " + strings.Join(t.Tags, " ") + " " + t.Body)
		tokenized[i] = toks
		seen := map[string]bool{}
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				docFreq[tok]++
			}
		}
	}
	n := float64(len(templates))
	for tok, df := range docFreq {
		lib.idf[tok] = math.Log(1 + n/float64(df))
	}
	lib.vecs = make([]map[string]float64, len(templates))
	for i, toks := range tokenized {
		lib.vecs[i] = lib.vectorize(toks)
	}
	return lib
}

// Size returns the number of indexed templates.
func (l *Library) Size() int { return len(l.templates) }

// Tokenize lowercases and splits on non-alphanumerics.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
			continue
		}
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks
}

func (l *Library) vectorize(toks []string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range toks {
		tf[t]++
	}
	vec := map[string]float64{}
	for t, f := range tf {
		idf, ok := l.idf[t]
		if !ok {
			idf = 1
		}
		vec[t] = (1 + math.Log(f)) * idf
	}
	return vec
}

func cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for t, va := range a {
		na += va * va
		if vb, ok := b[t]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Hit is one retrieval result.
type Hit struct {
	Template Template
	Score    float64
}

// Retrieve returns the top-k templates for a free-text query (typically
// the concatenated HLS diagnostics), best first, deterministically ordered.
func (l *Library) Retrieve(query string, k int) []Hit {
	qv := l.vectorize(Tokenize(query))
	hits := make([]Hit, 0, len(l.templates))
	for i, t := range l.templates {
		s := cosine(qv, l.vecs[i])
		if s > 0 {
			hits = append(hits, Hit{Template: t, Score: s})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Template.Name < hits[j].Template.Name
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Levenshtein returns the edit distance between two strings. The SLT loop
// uses it to keep the candidate pool diverse; retrieval uses it as a
// tie-breaker for near-identical templates.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// NormalizedLevenshtein returns the edit distance scaled into [0, 1] by
// the longer string's length.
func NormalizedLevenshtein(a, b string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(n)
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// DefaultCorrectionLibrary returns the repair templates the Fig. 2 flow
// retrieves from. Bodies carry the canonical parameters (bound=...) the
// simulated model extracts; a production deployment would carry worked
// code examples in the same slots.
func DefaultCorrectionLibrary() *Library {
	return NewLibrary([]Template{
		{
			Name: "malloc-to-static-array",
			Tags: []string{"dynamic-memory"},
			Body: "Replace heap allocation with a static array sized to the worst case.\n" +
				"Pattern: T *p = (T*)malloc(n * sizeof(T));  =>  T p[1024];  (static array bound=1024)\n" +
				"Remove matching free(p) calls; hardware has no heap.",
		},
		{
			Name: "while-to-bounded-for",
			Tags: []string{"unbounded-loop"},
			Body: "Rewrite while loops as bounded for loops so HLS can compute a trip count.\n" +
				"Pattern: while (cond) body  =>  for (int i = 0; i < 4096 && cond; i++) body (bounded loop bound=4096)",
		},
		{
			Name: "recursion-to-iteration",
			Tags: []string{"recursion"},
			Body: "Convert accumulator-style recursion into an iterative loop.\n" +
				"Pattern: if (n <= C) return K; return f(n-1) OP g(n);  =>  acc = K; for (i = C+1; i <= n; i++) acc = acc OP g(i); (iterative rewrite of recursion)",
		},
		{
			Name: "float-to-fixed",
			Tags: []string{"floating-point"},
			Body: "Replace float/double with integer fixed-point arithmetic; scale constants by " +
				"a power of two and shift after multiplication.",
		},
		{
			Name: "remove-kernel-io",
			Tags: []string{"io-in-kernel"},
			Body: "Delete printf/puts/putchar from the kernel; observability belongs in the " +
				"testbench, not the synthesized function.",
		},
		{
			Name: "pointer-param-to-array",
			Tags: []string{"pointer-parameter", "pointer-arithmetic"},
			Body: "Replace raw pointer parameters with sized array interfaces " +
				"(int *a  =>  int a[1024]) so the interface synthesizer can size the port. (static array bound=1024)",
		},
		{
			Name: "vla-to-static",
			Tags: []string{"variable-length-array"},
			Body: "Replace variable-length arrays with worst-case static arrays (static array bound=1024).",
		},
	})
}
