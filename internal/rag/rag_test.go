package rag

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("Replace heap-allocation: malloc(n * sizeof(int))!")
	want := []string{"replace", "heap", "allocation", "malloc", "n", "sizeof", "int"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestRetrieveMatchesByTopic(t *testing.T) {
	lib := DefaultCorrectionLibrary()
	hits := lib.Retrieve("sum_dyn:3: [dynamic-memory] malloc allocates unbounded memory", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Template.Name != "malloc-to-static-array" {
		t.Errorf("top hit = %q, want malloc template; hits: %v", hits[0].Template.Name, names(hits))
	}
	hits = lib.Retrieve("[recursion] function is recursive; hardware needs an iterative form", 3)
	if len(hits) == 0 || hits[0].Template.Name != "recursion-to-iteration" {
		t.Errorf("recursion query top hit = %v", names(hits))
	}
}

func names(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Template.Name
	}
	return out
}

func TestRetrieveDeterministicOrder(t *testing.T) {
	lib := DefaultCorrectionLibrary()
	a := names(lib.Retrieve("unbounded loop while trip count", 5))
	b := names(lib.Retrieve("unbounded loop while trip count", 5))
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("retrieval nondeterministic: %v vs %v", a, b)
	}
}

func TestRetrieveEmptyQuery(t *testing.T) {
	lib := DefaultCorrectionLibrary()
	if hits := lib.Retrieve("", 3); len(hits) != 0 {
		t.Errorf("empty query returned %v", names(hits))
	}
}

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinPropertiesQuick(t *testing.T) {
	// Symmetry.
	sym := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	// Identity and upper bound.
	bounds := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		if a == b {
			return d == 0
		}
		return d >= 1 && d <= maxLen
	}
	if err := quick.Check(bounds, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality on short strings.
	tri := func(a, b, c string) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		if len(c) > 24 {
			c = c[:24]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	if d := NormalizedLevenshtein("aaaa", "aaaa"); d != 0 {
		t.Errorf("identical = %f", d)
	}
	if d := NormalizedLevenshtein("aaaa", "bbbb"); d != 1 {
		t.Errorf("disjoint = %f", d)
	}
	if d := NormalizedLevenshtein("", ""); d != 0 {
		t.Errorf("empty = %f", d)
	}
}

func TestLibrarySize(t *testing.T) {
	if n := DefaultCorrectionLibrary().Size(); n < 6 {
		t.Errorf("library has only %d templates", n)
	}
}
