package obs

import (
	"context"
	"sync"
	"time"
)

// Canonical job phases, in pipeline-flow order. Every terminal job
// reports all five (pre-seeded at zero by NewSpans), so a cached hit
// shows up as sim == 0 rather than a missing row.
const (
	PhaseQueueWait  = "queue_wait"  // enqueue → worker pop
	PhaseLintScreen = "lint_screen" // static screen before simulation
	PhaseCompile    = "compile"     // parse + compile to the sim engine
	PhaseSim        = "sim"         // testbench execution (per candidate round)
	PhaseStoreWrite = "store_write" // report serialization into the store
	PhasePipeline   = "pipeline"    // whole eda.Run pipeline (spans the three middle phases)
)

// JobPhases returns the canonical job phases in flow order.
func JobPhases() []string {
	return []string{PhaseQueueWait, PhaseLintScreen, PhaseCompile, PhaseSim, PhaseStoreWrite}
}

// Span is one accumulated phase of a job: total duration and the
// number of recordings folded into it (N == 0 means the phase never
// ran — a pre-seeded zero row).
type Span struct {
	Phase string
	Dur   time.Duration
	N     int
}

// Spans accumulates per-phase durations for one job. It rides the job
// context (WithSpans/SpansOf) so eda.Run, the candidate loops and
// simfarm record into it without threading a parameter through every
// signature. A phase recorded more than once accumulates — per-
// candidate-round sim calls sum into one "sim" row. All methods are
// safe for concurrent use and on a nil receiver.
type Spans struct {
	mu    sync.Mutex
	order []string
	agg   map[string]*Span
}

// NewSpans returns a recorder pre-seeded with the given phases at
// zero, so a terminal breakdown always lists them even when a phase
// never ran (cached hits report sim == 0, not a missing row).
func NewSpans(phases ...string) *Spans {
	s := &Spans{agg: make(map[string]*Span, len(phases)+2)}
	for _, p := range phases {
		s.order = append(s.order, p)
		s.agg[p] = &Span{Phase: p}
	}
	return s
}

// Record folds one phase duration into the recorder. Unknown phases
// are appended after the seeded ones in first-recorded order. Safe on
// a nil receiver.
func (s *Spans) Record(phase string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	sp, ok := s.agg[phase]
	if !ok {
		sp = &Span{Phase: phase}
		s.agg[phase] = sp
		s.order = append(s.order, phase)
	}
	sp.Dur += d
	sp.N++
	s.mu.Unlock()
}

// Since is shorthand for Record(phase, time.Since(start)).
func (s *Spans) Since(phase string, start time.Time) {
	if s == nil {
		return
	}
	s.Record(phase, time.Since(start))
}

// Snapshot returns the current breakdown, seeded phases first in seed
// order, then extras in first-recorded order. Safe on a nil receiver
// (returns nil).
func (s *Spans) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.order))
	for _, p := range s.order {
		out = append(out, *s.agg[p])
	}
	return out
}

// Get returns the accumulated span for one phase (zero Span when never
// recorded). Safe on a nil receiver.
func (s *Spans) Get(phase string) Span {
	if s == nil {
		return Span{Phase: phase}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp, ok := s.agg[phase]; ok {
		return *sp
	}
	return Span{Phase: phase}
}

type spansKey struct{}

// WithSpans hangs a span recorder off the context. Layers below
// retrieve it with SpansOf and record phase durations; a context
// without one makes SpansOf return nil, and every recording method is
// nil-safe, so untraced runs pay a context lookup and nothing else.
func WithSpans(ctx context.Context, s *Spans) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spansKey{}, s)
}

// SpansOf returns the span recorder carried by ctx, or nil.
func SpansOf(ctx context.Context) *Spans {
	s, _ := ctx.Value(spansKey{}).(*Spans)
	return s
}
