// Package obs is the zero-dependency telemetry core of the repo: atomic
// counters and gauges, log-bucketed latency histograms with quantile
// extraction, a registry that renders everything in Prometheus text
// exposition format, and a per-job span recorder carried on the context
// (see span.go).
//
// Two contracts shape the API:
//
//   - Allocation-free when hot. Recording into a Counter, Gauge or
//     Histogram is a handful of atomic adds — no locks, no maps, no
//     allocation. Registry lookups (which do lock) happen at wiring
//     time or once per job, never per simulated event.
//   - Zero overhead when off. Every recording method is safe on a nil
//     receiver and returns immediately, so call sites follow the same
//     `if x != nil`-guard discipline as the kernel's commit probes and
//     the fault-injection hooks (cmd/repolint enforces it on kernel
//     files). A build that never wires telemetry pays a nil check and
//     nothing else.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (Prometheus counter).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (Prometheus gauge).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (may be negative). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric kinds as they appear in `# TYPE` exposition lines.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindSummary = "summary"
)

// family is one named metric family: a help string, a kind, and one
// instance per distinct label set.
type family struct {
	name string
	help string
	kind string

	mu    sync.Mutex
	insts map[string]*instance // keyed by rendered label block
}

type instance struct {
	labels string // rendered `{k="v",...}` block, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; Counter/Gauge/Histogram
// return the same instance for the same (name, labels) pair, so call
// sites may re-look-up instead of caching when off the hot path.
type Registry struct {
	mu    sync.Mutex
	order []string
	fams  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// familyOf returns (creating if needed) the named family, panicking on
// a kind conflict — mixing kinds under one name is a programming error
// that would corrupt the exposition.
func (r *Registry) familyOf(name, help, kind string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, insts: make(map[string]*instance)}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) instanceOf(labels []string) *instance {
	block := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, ok := f.insts[block]
	if !ok {
		in = &instance{labels: block}
		switch f.kind {
		case KindCounter:
			in.c = new(Counter)
		case KindGauge:
			in.g = new(Gauge)
		case KindSummary:
			in.h = newHistogram()
		}
		f.insts[block] = in
	}
	return in
}

// Counter returns the counter for name and the given label pairs
// (k1, v1, k2, v2, ...), registering the family on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.familyOf(name, help, KindCounter).instanceOf(labels).c
}

// Gauge returns the gauge for name and the given label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.familyOf(name, help, KindGauge).instanceOf(labels).g
}

// Histogram returns the latency histogram for name and the given label
// pairs. It is exposed as a Prometheus summary: quantile-labelled
// samples plus _sum and _count.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.familyOf(name, help, KindSummary).instanceOf(labels).h
}

// Expose writes every registered family in Prometheus text exposition
// format (version 0.0.4), families in registration order and instances
// in sorted label order so scrapes diff cleanly.
func (r *Registry) Expose(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		blocks := make([]string, 0, len(f.insts))
		for b := range f.insts {
			blocks = append(blocks, b)
		}
		sort.Strings(blocks)
		insts := make([]*instance, 0, len(blocks))
		for _, b := range blocks {
			insts = append(insts, f.insts[b])
		}
		f.mu.Unlock()
		writeHeader(w, f.name, f.help, f.kind)
		for _, in := range insts {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, in.labels, in.c.Value())
			case KindGauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, in.labels, in.g.Value())
			case KindSummary:
				in.h.expose(w, f.name, in.labels)
			}
		}
	}
}

// Sample is one exposition line of a harvested (non-registry) family:
// label pairs plus a value. See WriteFamily.
type Sample struct {
	Labels []string // k1, v1, k2, v2, ...
	Value  float64
}

// WriteFamily writes one complete counter/gauge family in exposition
// format. It is the escape hatch for metrics whose source of truth
// lives elsewhere (server atomics, FarmStats, VMStats, faultinject
// counters): the caller harvests values at scrape time and this keeps
// the formatting and escaping in one place.
func WriteFamily(w io.Writer, name, help, kind string, samples ...Sample) {
	writeHeader(w, name, help, kind)
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value))
	}
}

func writeHeader(w io.Writer, name, help, kind string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// formatValue renders integral values without an exponent so counters
// read naturally, and everything else with full float precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// renderLabels turns (k1, v1, ...) pairs into a `{k1="v1",...}` block,
// empty for no labels. A trailing odd key gets an empty value rather
// than a panic: exposition must never take the server down.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
