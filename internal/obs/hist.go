package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers [1µs, 2^39µs ≈ 6.4 days) in factor-of-two steps;
// bucket 0 is the sub-microsecond underflow bucket, the last bucket is
// the overflow catch-all. 41 word-sized atomics per histogram.
const histBuckets = 41

// Histogram is a fixed-shape log-bucketed latency histogram: bucket i
// (i ≥ 1) counts durations in [2^(i-1)µs, 2^i µs). Recording is three
// atomic adds — no locks, no allocation — which is what lets per-phase
// histograms sit on the job hot path. Quantiles are extracted by rank
// walk with linear interpolation inside the landing bucket, so an
// estimate is always within the bucket of the exact order statistic
// (a factor-2 relative error bound; see the property test).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us == 0 {
		return 0
	}
	// A value in [2^(k-1), 2^k) has bit length k → bucket k.
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one observation. Safe on a nil receiver (zero overhead
// when telemetry is off).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the number of observations. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration. Safe on a nil receiver.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns the q-quantile (0 < q ≤ 1) as a duration, linearly
// interpolated inside the bucket holding the nearest-rank order
// statistic. Returns 0 with no observations. Safe on a nil receiver.
//
// The counters are read individually, not as one snapshot; under
// concurrent recording the result is a monitoring-grade estimate,
// which is all a scrape needs.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest rank: the ceil(q·n)-th smallest observation, at least 1.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			// Position of the rank inside this bucket, interpolated.
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	// Counters moved under our feet; report the overflow bound.
	lo, _ := bucketBounds(histBuckets - 1)
	return lo
}

// bucketBounds returns the [lo, hi) duration range of bucket i.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, time.Microsecond
	}
	lo = time.Duration(uint64(1)<<(i-1)) * time.Microsecond
	return lo, lo * 2
}

// expose writes the histogram as one Prometheus summary instance:
// p50/p95/p99 quantile samples plus _sum and _count, values in
// seconds. labels is the rendered `{...}` block ("" when unlabelled).
func (h *Histogram) expose(w io.Writer, name, labels string) {
	for _, q := range [...]float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s%s %g\n", name, mergeLabels(labels, fmt.Sprintf(`quantile="%g"`, q)), h.Quantile(q).Seconds())
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLabels appends extra to a rendered label block.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}
