package obs

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramPercentileProperty checks the factor-2 error contract:
// for random sample sets drawn from several shapes, every extracted
// quantile must land in the same log bucket as the exact sorted-order
// statistic, i.e. within a factor of 2 (and within the 1µs floor for
// sub-microsecond exact values).
func TestHistogramPercentileProperty(t *testing.T) {
	shapes := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(10 * time.Millisecond)))
		},
		"exponential": func(r *rand.Rand) time.Duration {
			return time.Duration(r.ExpFloat64() * float64(500*time.Microsecond))
		},
		"heavy-tail": func(r *rand.Rand) time.Duration {
			// Mostly fast, occasionally ~1000x slower: the shape a
			// cache-heavy job mix actually produces.
			if r.Intn(20) == 0 {
				return time.Duration(r.Int63n(int64(2 * time.Second)))
			}
			return time.Duration(r.Int63n(int64(300 * time.Microsecond)))
		},
		"sub-microsecond": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(5 * time.Microsecond)))
		},
	}
	for name, draw := range shapes {
		for _, n := range []int{10, 137, 5000} {
			r := rand.New(rand.NewSource(int64(n) * 7919))
			h := newHistogram()
			samples := make([]time.Duration, n)
			for i := range samples {
				samples[i] = draw(r)
				h.Record(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
				rank := int(math.Ceil(q * float64(n)))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				got := h.Quantile(q)
				if exact < time.Microsecond {
					if got > time.Microsecond {
						t.Errorf("%s n=%d q=%g: exact %v sub-µs but estimate %v above the underflow bucket", name, n, q, exact, got)
					}
					continue
				}
				if got < exact/2 || got > exact*2 {
					t.Errorf("%s n=%d q=%g: estimate %v outside factor-2 of exact %v", name, n, q, got, exact)
				}
			}
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Record(time.Second) // must not panic
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := newHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Record(-time.Second) // clamps to 0
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative record: count=%d sum=%v, want 1, 0", h.Count(), h.Sum())
	}
	// Overflow: far beyond the last bucket must still land somewhere sane.
	h2 := newHistogram()
	h2.Record(365 * 24 * time.Hour)
	if got := h2.Quantile(1); got < time.Hour {
		t.Errorf("overflow quantile = %v, want >= 1h", got)
	}
}

func TestRegistryIdentityAndExpose(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("jobs_total", "Jobs.", "state", "done")
	c2 := r.Counter("jobs_total", "Jobs.", "state", "done")
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c1.Add(3)
	r.Counter("jobs_total", "Jobs.", "state", "failed").Inc()
	r.Gauge("queue_depth", "Queued jobs.").Set(7)
	h := r.Histogram("phase_seconds", "Phase latency.", "phase", "sim")
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)

	var b strings.Builder
	r.Expose(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs.\n# TYPE jobs_total counter\n",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE phase_seconds summary",
		`phase_seconds{phase="sim",quantile="0.5"}`,
		`phase_seconds{phase="sim",quantile="0.99"}`,
		`phase_seconds_count{phase="sim"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sum in seconds: 6ms → 0.006.
	if !strings.Contains(out, `phase_seconds_sum{phase="sim"} 0.006`) {
		t.Errorf("exposition sum not in seconds:\n%s", out)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestWriteFamilyEscaping(t *testing.T) {
	var b strings.Builder
	WriteFamily(&b, "faults_total", `Faults "fired".`+"\nsecond line", KindCounter,
		Sample{Labels: []string{"point", `a"b\c` + "\n"}, Value: 2})
	out := b.String()
	if !strings.Contains(out, `# HELP faults_total Faults "fired".\nsecond line`) {
		t.Errorf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `faults_total{point="a\"b\\c\n"} 2`) {
		t.Errorf("label not escaped: %q", out)
	}
}

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	r.Counter("a", "A.").Inc()
	r.Gauge("b", "B.").Set(1)
	r.Histogram("c", "C.").Record(time.Second)
	var b strings.Builder
	r.Expose(&b)
	if b.Len() != 0 {
		t.Errorf("nil registry exposed %q", b.String())
	}
	var c *Counter
	var g *Gauge
	c.Inc()
	g.Add(-1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil counter/gauge hold values")
	}
}

func TestSpansSeededAndAccumulating(t *testing.T) {
	s := NewSpans(JobPhases()...)
	s.Record(PhaseSim, 2*time.Millisecond)
	s.Record(PhaseSim, 3*time.Millisecond) // per-round calls accumulate
	s.Record("custom", time.Millisecond)   // extras append after seeds
	snap := s.Snapshot()
	if len(snap) != len(JobPhases())+1 {
		t.Fatalf("snapshot has %d rows, want %d", len(snap), len(JobPhases())+1)
	}
	for i, p := range JobPhases() {
		if snap[i].Phase != p {
			t.Errorf("row %d = %s, want %s (seeded order)", i, snap[i].Phase, p)
		}
	}
	if got := s.Get(PhaseSim); got.Dur != 5*time.Millisecond || got.N != 2 {
		t.Errorf("sim span = %+v, want 5ms over 2 recordings", got)
	}
	if got := s.Get(PhaseLintScreen); got.Dur != 0 || got.N != 0 {
		t.Errorf("unrecorded seeded span = %+v, want zero row", got)
	}
	if snap[len(snap)-1].Phase != "custom" {
		t.Errorf("extra phase not appended last: %+v", snap)
	}
}

func TestSpansContextAndNil(t *testing.T) {
	if SpansOf(context.Background()) != nil {
		t.Fatal("empty context carries spans")
	}
	s := NewSpans(PhaseSim)
	ctx := WithSpans(context.Background(), s)
	if SpansOf(ctx) != s {
		t.Fatal("WithSpans/SpansOf roundtrip failed")
	}
	if WithSpans(context.Background(), nil) != context.Background() {
		t.Fatal("WithSpans(nil) should be a no-op")
	}
	var nilS *Spans
	nilS.Record(PhaseSim, time.Second)
	nilS.Since(PhaseSim, time.Now())
	if nilS.Snapshot() != nil {
		t.Fatal("nil spans snapshot not nil")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "L.")
	c := r.Counter("n_total", "N.")
	s := NewSpans(PhaseSim)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
				c.Inc()
				s.Record(PhaseSim, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
	if sp := s.Get(PhaseSim); sp.N != 8000 {
		t.Errorf("span n=%d, want 8000", sp.N)
	}
}
