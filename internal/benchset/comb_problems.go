package benchset

// Combinational problems. Each reference is written in the plain
// subset-friendly style the simulated LLM mutates line-by-line.

func combSuite() []*Problem {
	var ps []*Problem

	ps = append(ps, combProblem("not1",
		"A 1-bit inverter: output y is the logical NOT of input a.",
		1, "not1",
		`module not1(input a, output y);
  assign y = ~a;
endmodule
`,
		[]Port{{Name: "a", Width: 1, IsInput: true}, {Name: "y", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			return map[string]uint64{"y": ^in["a"] & 1}
		},
		[]map[string]uint64{{"a": 0}, {"a": 1}, {"a": 0}, {"a": 1}}))

	ps = append(ps, combProblem("and4",
		"A 4-bit bitwise AND: y = a & b for 4-bit inputs a and b.",
		1, "and4",
		`module and4(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a & b;
endmodule
`,
		[]Port{{Name: "a", Width: 4, IsInput: true}, {Name: "b", Width: 4, IsInput: true}, {Name: "y", Width: 4}},
		func(in map[string]uint64) map[string]uint64 {
			return map[string]uint64{"y": in["a"] & in["b"]}
		},
		sweep2("a", 16, "b", 16)))

	ps = append(ps, combProblem("mux2",
		"An 8-bit 2:1 multiplexer: y = b when sel is 1, else y = a.",
		1, "mux2",
		`module mux2(input sel, input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = sel ? b : a;
endmodule
`,
		[]Port{{Name: "sel", Width: 1, IsInput: true}, {Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			if in["sel"] == 1 {
				return map[string]uint64{"y": in["b"]}
			}
			return map[string]uint64{"y": in["a"]}
		},
		func() []map[string]uint64 {
			var v []map[string]uint64
			for _, s := range []uint64{0, 1} {
				for _, pair := range sample2("a", 8, "b", 8, 12) {
					pair["sel"] = s
					v = append(v, pair)
				}
			}
			return v
		}()))

	ps = append(ps, combProblem("adder4",
		"A 4-bit full adder with carry-in and carry-out: {cout, sum} = a + b + cin.",
		2, "adder4",
		`module adder4(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);
  assign {cout, sum} = a + b + cin;
endmodule
`,
		[]Port{{Name: "a", Width: 4, IsInput: true}, {Name: "b", Width: 4, IsInput: true}, {Name: "cin", Width: 1, IsInput: true}, {Name: "sum", Width: 4}, {Name: "cout", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			t := in["a"] + in["b"] + in["cin"]
			return map[string]uint64{"sum": t & 15, "cout": t >> 4}
		},
		func() []map[string]uint64 {
			var v []map[string]uint64
			for a := uint64(0); a < 16; a++ {
				for b := uint64(0); b < 16; b++ {
					v = append(v, map[string]uint64{"a": a, "b": b, "cin": (a ^ b) & 1})
				}
			}
			return v
		}()))

	ps = append(ps, combProblem("sub8",
		"An 8-bit subtractor: diff = a - b (modulo 256) and borrow = 1 when a < b.",
		2, "sub8",
		`module sub8(input [7:0] a, input [7:0] b, output [7:0] diff, output borrow);
  assign diff = a - b;
  assign borrow = a < b;
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "diff", Width: 8}, {Name: "borrow", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			out := map[string]uint64{"diff": (in["a"] - in["b"]) & 255}
			if in["a"] < in["b"] {
				out["borrow"] = 1
			} else {
				out["borrow"] = 0
			}
			return out
		},
		sample2("a", 8, "b", 8, 48)))

	ps = append(ps, combProblem("mux4",
		"An 8-bit 4:1 multiplexer with a 2-bit select: y = a/b/c/d for sel = 0/1/2/3.",
		2, "mux4",
		`module mux4(input [1:0] sel, input [7:0] a, input [7:0] b, input [7:0] c, input [7:0] d, output reg [7:0] y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule
`,
		[]Port{{Name: "sel", Width: 2, IsInput: true}, {Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "c", Width: 8, IsInput: true}, {Name: "d", Width: 8, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			switch in["sel"] {
			case 0:
				return map[string]uint64{"y": in["a"]}
			case 1:
				return map[string]uint64{"y": in["b"]}
			case 2:
				return map[string]uint64{"y": in["c"]}
			default:
				return map[string]uint64{"y": in["d"]}
			}
		},
		func() []map[string]uint64 {
			var v []map[string]uint64
			state := uint64(7)
			for s := uint64(0); s < 4; s++ {
				for i := 0; i < 8; i++ {
					state = state*6364136223846793005 + 1442695040888963407
					v = append(v, map[string]uint64{
						"sel": s, "a": state & 255, "b": (state >> 8) & 255,
						"c": (state >> 16) & 255, "d": (state >> 24) & 255,
					})
				}
			}
			return v
		}()))

	ps = append(ps, combProblem("dec3to8",
		"A 3-to-8 one-hot decoder with enable: when en is 1, output bit sel is 1 and the rest are 0; when en is 0, y is 0.",
		2, "dec3to8",
		`module dec3to8(input en, input [2:0] sel, output [7:0] y);
  assign y = en ? (8'd1 << sel) : 8'd0;
endmodule
`,
		[]Port{{Name: "en", Width: 1, IsInput: true}, {Name: "sel", Width: 3, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			if in["en"] == 1 {
				return map[string]uint64{"y": 1 << in["sel"]}
			}
			return map[string]uint64{"y": 0}
		},
		sweep2("en", 2, "sel", 8)))

	ps = append(ps, combProblem("enc8to3",
		"An 8-to-3 priority encoder: y is the index of the highest set bit of a, and valid is 1 when a is non-zero (y is 0 when a is 0).",
		3, "enc8to3",
		`module enc8to3(input [7:0] a, output reg [2:0] y, output valid);
  assign valid = a != 0;
  always @(*) begin
    casez (a)
      8'b1zzzzzzz: y = 3'd7;
      8'b01zzzzzz: y = 3'd6;
      8'b001zzzzz: y = 3'd5;
      8'b0001zzzz: y = 3'd4;
      8'b00001zzz: y = 3'd3;
      8'b000001zz: y = 3'd2;
      8'b0000001z: y = 3'd1;
      default: y = 3'd0;
    endcase
  end
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "y", Width: 3}, {Name: "valid", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			a := in["a"]
			out := map[string]uint64{"y": 0, "valid": 0}
			if a != 0 {
				out["valid"] = 1
				for i := 7; i >= 0; i-- {
					if a>>uint(i)&1 == 1 {
						out["y"] = uint64(i)
						break
					}
				}
			}
			return out
		},
		sweep1("a", 256)))

	ps = append(ps, combProblem("parity8",
		"An 8-bit even-parity generator: p is the XOR of all bits of a.",
		1, "parity8",
		`module parity8(input [7:0] a, output p);
  assign p = ^a;
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "p", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			x := in["a"]
			x ^= x >> 4
			x ^= x >> 2
			x ^= x >> 1
			return map[string]uint64{"p": x & 1}
		},
		sweep1("a", 256)))

	ps = append(ps, combProblem("popcount8",
		"An 8-bit population count: c is the number of set bits of a (0..8).",
		3, "popcount8",
		`module popcount8(input [7:0] a, output [3:0] c);
  assign c = a[0] + a[1] + a[2] + a[3] + a[4] + a[5] + a[6] + a[7];
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "c", Width: 4}},
		func(in map[string]uint64) map[string]uint64 {
			n := uint64(0)
			for i := 0; i < 8; i++ {
				n += in["a"] >> uint(i) & 1
			}
			return map[string]uint64{"c": n}
		},
		sweep1("a", 256)))

	ps = append(ps, combProblem("alu8",
		"An 8-bit ALU with a 2-bit opcode: op 0 adds, op 1 subtracts, op 2 ANDs, op 3 XORs; the result wraps modulo 256.",
		4, "alu8",
		`module alu8(input [1:0] op, input [7:0] a, input [7:0] b, output reg [7:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule
`,
		[]Port{{Name: "op", Width: 2, IsInput: true}, {Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			a, b := in["a"], in["b"]
			switch in["op"] {
			case 0:
				return map[string]uint64{"y": (a + b) & 255}
			case 1:
				return map[string]uint64{"y": (a - b) & 255}
			case 2:
				return map[string]uint64{"y": a & b}
			default:
				return map[string]uint64{"y": a ^ b}
			}
		},
		func() []map[string]uint64 {
			var v []map[string]uint64
			for op := uint64(0); op < 4; op++ {
				for _, pair := range sample2("a", 8, "b", 8, 12) {
					pair["op"] = op
					v = append(v, pair)
				}
			}
			return v
		}()))

	ps = append(ps, combProblem("cmp8",
		"An 8-bit unsigned comparator producing three outputs: eq (a == b), lt (a < b) and gt (a > b).",
		2, "cmp8",
		`module cmp8(input [7:0] a, input [7:0] b, output eq, output lt, output gt);
  assign eq = a == b;
  assign lt = a < b;
  assign gt = a > b;
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "eq", Width: 1}, {Name: "lt", Width: 1}, {Name: "gt", Width: 1}},
		func(in map[string]uint64) map[string]uint64 {
			out := map[string]uint64{"eq": 0, "lt": 0, "gt": 0}
			switch {
			case in["a"] == in["b"]:
				out["eq"] = 1
			case in["a"] < in["b"]:
				out["lt"] = 1
			default:
				out["gt"] = 1
			}
			return out
		},
		append(sample2("a", 8, "b", 8, 40),
			map[string]uint64{"a": 7, "b": 7},
			map[string]uint64{"a": 255, "b": 255},
			map[string]uint64{"a": 0, "b": 0})))

	ps = append(ps, combProblem("absdiff8",
		"An 8-bit absolute difference: y = |a - b| for unsigned inputs.",
		3, "absdiff8",
		`module absdiff8(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a > b) ? (a - b) : (b - a);
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			if in["a"] > in["b"] {
				return map[string]uint64{"y": in["a"] - in["b"]}
			}
			return map[string]uint64{"y": in["b"] - in["a"]}
		},
		sample2("a", 8, "b", 8, 48)))

	ps = append(ps, combProblem("minmax8",
		"An 8-bit min/max unit: mn = min(a, b) and mx = max(a, b) for unsigned inputs.",
		3, "minmax8",
		`module minmax8(input [7:0] a, input [7:0] b, output [7:0] mn, output [7:0] mx);
  assign mn = (a < b) ? a : b;
  assign mx = (a < b) ? b : a;
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "mn", Width: 8}, {Name: "mx", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			a, b := in["a"], in["b"]
			if a < b {
				return map[string]uint64{"mn": a, "mx": b}
			}
			return map[string]uint64{"mn": b, "mx": a}
		},
		sample2("a", 8, "b", 8, 48)))

	ps = append(ps, combProblem("barrel8",
		"An 8-bit logical barrel shifter: y = a shifted left by sh bits (zeros shifted in), where sh is 3 bits.",
		4, "barrel8",
		`module barrel8(input [7:0] a, input [2:0] sh, output [7:0] y);
  wire [7:0] s1;
  wire [7:0] s2;
  assign s1 = sh[0] ? {a[6:0], 1'b0} : a;
  assign s2 = sh[1] ? {s1[5:0], 2'b00} : s1;
  assign y = sh[2] ? {s2[3:0], 4'b0000} : s2;
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "sh", Width: 3, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			return map[string]uint64{"y": (in["a"] << in["sh"]) & 255}
		},
		sweep2("a", 32, "sh", 8)))

	ps = append(ps, combProblem("gray4",
		"A 4-bit binary-to-Gray-code converter: g = b ^ (b >> 1).",
		2, "gray4",
		`module gray4(input [3:0] b, output [3:0] g);
  assign g = b ^ (b >> 1);
endmodule
`,
		[]Port{{Name: "b", Width: 4, IsInput: true}, {Name: "g", Width: 4}},
		func(in map[string]uint64) map[string]uint64 {
			return map[string]uint64{"g": in["b"] ^ (in["b"] >> 1)}
		},
		sweep1("b", 16)))

	ps = append(ps, combProblem("satadd8",
		"An 8-bit saturating unsigned adder: y = a + b, clamped to 255 on overflow.",
		3, "satadd8",
		`module satadd8(input [7:0] a, input [7:0] b, output [7:0] y);
  wire [8:0] full;
  assign full = a + b;
  assign y = full[8] ? 8'd255 : full[7:0];
endmodule
`,
		[]Port{{Name: "a", Width: 8, IsInput: true}, {Name: "b", Width: 8, IsInput: true}, {Name: "y", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			t := in["a"] + in["b"]
			if t > 255 {
				t = 255
			}
			return map[string]uint64{"y": t}
		},
		append(sample2("a", 8, "b", 8, 40),
			map[string]uint64{"a": 255, "b": 255},
			map[string]uint64{"a": 200, "b": 100},
			map[string]uint64{"a": 1, "b": 254})))

	ps = append(ps, combProblem("mult4",
		"A 4x4 unsigned multiplier: p = a * b, producing an 8-bit product.",
		3, "mult4",
		`module mult4(input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = a * b;
endmodule
`,
		[]Port{{Name: "a", Width: 4, IsInput: true}, {Name: "b", Width: 4, IsInput: true}, {Name: "p", Width: 8}},
		func(in map[string]uint64) map[string]uint64 {
			return map[string]uint64{"p": (in["a"] * in["b"]) & 255}
		},
		sweep2("a", 16, "b", 16)))

	return ps
}
