package benchset

import (
	"testing"

	"llm4eda/internal/verilog"
)

// TestAllReferencesPass is the suite's ground-truth guarantee: every
// reference implementation passes its own full testbench.
func TestAllReferencesPass(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			res, err := verilog.RunTestbench(p.Reference, p.Testbench(), "tb", verilog.SimOptions{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if res.RuntimeErr != nil {
				t.Fatalf("runtime: %v\n%s", res.RuntimeErr, res.Output)
			}
			if !res.Passed() {
				t.Fatalf("reference fails own testbench: %d/%d failures\n%s",
					res.Failures, res.Checks, res.Output)
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 20 {
		t.Fatalf("suite has %d problems, want >= 20", len(suite))
	}
	seen := map[string]bool{}
	diffs := map[int]int{}
	for _, p := range suite {
		if seen[p.ID] {
			t.Errorf("duplicate problem id %q", p.ID)
		}
		seen[p.ID] = true
		if p.Spec == "" || p.Reference == "" || p.TopModule == "" {
			t.Errorf("%s: incomplete problem", p.ID)
		}
		if p.Checks() < 4 {
			t.Errorf("%s: only %d checks; testbench coverage too thin", p.ID, p.Checks())
		}
		if p.Difficulty < 1 || p.Difficulty > 5 {
			t.Errorf("%s: difficulty %d out of range", p.ID, p.Difficulty)
		}
		diffs[p.Difficulty]++
		if len(p.TBBlocks) < 2 {
			t.Errorf("%s: %d testbench blocks; coverage model needs >= 2", p.ID, len(p.TBBlocks))
		}
	}
	for d := 1; d <= 5; d++ {
		if diffs[d] == 0 {
			t.Errorf("no problems at difficulty %d", d)
		}
	}
}

func TestByIDAndEightDesignSet(t *testing.T) {
	if ByID("adder4") == nil {
		t.Error("ByID(adder4) = nil")
	}
	if ByID("no-such") != nil {
		t.Error("ByID(no-such) != nil")
	}
	eight := EightDesignSet()
	if len(eight) != 8 {
		t.Fatalf("EightDesignSet has %d problems", len(eight))
	}
}

// TestTruncatedTestbenchStillRuns checks the coverage-loss model's
// assumption: a testbench with only the first vector block still compiles
// and finishes.
func TestTruncatedTestbenchStillRuns(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			tb := p.TBHeader + p.TBBlocks[0] + p.TBFooter
			res, err := verilog.RunTestbench(p.Reference, tb, "tb", verilog.SimOptions{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if res.RuntimeErr != nil || !res.Finished {
				t.Fatalf("truncated bench broken: %v\n%s", res.RuntimeErr, res.Output)
			}
			if res.Failures > 0 {
				t.Fatalf("reference fails truncated bench:\n%s", res.Output)
			}
		})
	}
}
