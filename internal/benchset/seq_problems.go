package benchset

// Sequential and FSM problems with hand-written cycle-script testbenches.
// Each block is one stimulus/check phase so the coverage-loss model can
// drop later phases.

func seqSuite() []*Problem {
	var ps []*Problem

	ps = append(ps, &Problem{
		ID:         "dff",
		Spec:       "A D flip-flop with synchronous active-high reset: on each rising clock edge q becomes 0 if rst is 1, otherwise q becomes d.",
		Difficulty: 1,
		TopModule:  "dff",
		Reference: `module dff(input clk, input rst, input d, output reg q);
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst, d;
  wire q;
  dff dut(.clk(clk), .rst(rst), .d(d), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; d = 0;
    @(negedge clk);
`,
		TBBlocks: []string{
			"    rst = 1; d = 1; @(negedge clk);\n    $check_eq(q, 1'b0);\n",
			"    rst = 0; d = 1; @(negedge clk);\n    $check_eq(q, 1'b1);\n",
			"    d = 0; @(negedge clk);\n    $check_eq(q, 1'b0);\n",
			"    d = 1; @(negedge clk);\n    $check_eq(q, 1'b1);\n",
			"    rst = 1; @(negedge clk);\n    $check_eq(q, 1'b0);\n",
			"    rst = 0; d = 1; @(negedge clk);\n    $check_eq(q, 1'b1);\n",
			"    d = 1; @(negedge clk);\n    $check_eq(q, 1'b1);\n",
			"    d = 0; @(negedge clk);\n    $check_eq(q, 1'b0);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "counter8",
		Spec:       "An 8-bit up counter with synchronous reset and enable: on each rising clock edge, reset clears q to 0; otherwise q increments by 1 when en is 1 and holds when en is 0.",
		Difficulty: 2,
		TopModule:  "counter8",
		Reference: `module counter8(input clk, input rst, input en, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else if (en) q <= q + 8'd1;
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst, en;
  wire [7:0] q;
  integer i;
  counter8 dut(.clk(clk), .rst(rst), .en(en), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; en = 0;
    @(negedge clk);
`,
		TBBlocks: []string{
			"    $check_eq(q, 8'd0);\n    rst = 0; en = 1;\n",
			"    for (i = 0; i < 5; i = i + 1) @(negedge clk);\n    $check_eq(q, 8'd5);\n",
			"    en = 0; @(negedge clk); @(negedge clk);\n    $check_eq(q, 8'd5);\n",
			"    en = 1; for (i = 0; i < 10; i = i + 1) @(negedge clk);\n    $check_eq(q, 8'd15);\n",
			"    rst = 1; @(negedge clk);\n    $check_eq(q, 8'd0);\n",
			"    rst = 0; for (i = 0; i < 3; i = i + 1) @(negedge clk);\n    $check_eq(q, 8'd3);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "shift4",
		Spec:       "A 4-bit serial-in shift register: on each rising clock edge, the register shifts left by one and din enters as the least-significant bit.",
		Difficulty: 2,
		TopModule:  "shift4",
		Reference: `module shift4(input clk, input din, output reg [3:0] q);
  always @(posedge clk) begin
    q <= {q[2:0], din};
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, din;
  wire [3:0] q;
  shift4 dut(.clk(clk), .din(din), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; din = 0;
    @(negedge clk); @(negedge clk);
    @(negedge clk); @(negedge clk);
    $check_eq(q, 4'b0000);
`,
		TBBlocks: []string{
			"    din = 1; @(negedge clk);\n    $check_eq(q[0], 1'b1);\n",
			"    din = 0; @(negedge clk);\n    $check_eq(q[1:0], 2'b10);\n",
			"    din = 1; @(negedge clk);\n    $check_eq(q[2:0], 3'b101);\n",
			"    din = 1; @(negedge clk);\n    $check_eq(q, 4'b1011);\n",
			"    din = 0; @(negedge clk);\n    $check_eq(q, 4'b0110);\n",
			"    din = 0; @(negedge clk);\n    $check_eq(q, 4'b1100);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "updown4",
		Spec:       "A 4-bit up/down counter with synchronous reset: on each rising clock edge, reset clears q; otherwise q increments when up is 1 and decrements when up is 0, wrapping modulo 16.",
		Difficulty: 3,
		TopModule:  "updown4",
		Reference: `module updown4(input clk, input rst, input up, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (up) q <= q + 4'd1;
    else q <= q - 4'd1;
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst, up;
  wire [3:0] q;
  integer i;
  updown4 dut(.clk(clk), .rst(rst), .up(up), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; up = 1;
    @(negedge clk);
    rst = 0;
`,
		TBBlocks: []string{
			"    for (i = 0; i < 6; i = i + 1) @(negedge clk);\n    $check_eq(q, 4'd6);\n",
			"    up = 0; for (i = 0; i < 2; i = i + 1) @(negedge clk);\n    $check_eq(q, 4'd4);\n",
			"    for (i = 0; i < 5; i = i + 1) @(negedge clk);\n    $check_eq(q, 4'd15);\n",
			"    up = 1; @(negedge clk);\n    $check_eq(q, 4'd0);\n",
			"    rst = 1; @(negedge clk);\n    $check_eq(q, 4'd0);\n",
			"    rst = 0; up = 1; @(negedge clk);\n    $check_eq(q, 4'd1);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "det101",
		Spec:       "A Moore FSM that detects the overlapping pattern 101 on serial input din: found pulses high for one cycle after the final 1 of each occurrence. Synchronous active-high reset.",
		Difficulty: 5,
		TopModule:  "det101",
		Reference: `module det101(input clk, input rst, input din, output reg found);
  reg [1:0] st;
  always @(posedge clk) begin
    if (rst) begin
      st <= 2'd0;
      found <= 1'b0;
    end else begin
      found <= 1'b0;
      case (st)
        2'd0: st <= din ? 2'd1 : 2'd0;
        2'd1: st <= din ? 2'd1 : 2'd2;
        2'd2: begin
          if (din) begin
            found <= 1'b1;
            st <= 2'd1;
          end else begin
            st <= 2'd0;
          end
        end
        default: st <= 2'd0;
      endcase
    end
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst, din;
  wire found;
  integer hits;
  det101 dut(.clk(clk), .rst(rst), .din(din), .found(found));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; din = 0; hits = 0;
    @(negedge clk);
    rst = 0;
`,
		TBBlocks: []string{
			// Pattern 1 0 1 -> found pulses during the cycle after the final 1.
			"    din = 1; @(negedge clk); din = 0; @(negedge clk); din = 1; @(negedge clk);\n    $check_eq(found, 1'b1);\n",
			// Overlap: continue 0 1 -> second hit (1 0 1|0 1 -> 101 at 2-4).
			"    din = 0; @(negedge clk); din = 1; @(negedge clk);\n    $check_eq(found, 1'b1);\n",
			// No pattern: 1 1 0 0 -> no hit.
			"    din = 1; @(negedge clk); din = 1; @(negedge clk); din = 0; @(negedge clk); din = 0; @(negedge clk);\n    $check_eq(found, 1'b0);\n",
			// Reset mid-stream kills partial match: 1 0 [rst] 1 -> no hit.
			"    din = 1; @(negedge clk); din = 0; @(negedge clk);\n    rst = 1; @(negedge clk); rst = 0;\n    din = 1; @(negedge clk); @(negedge clk);\n    $check_eq(found, 1'b0);\n",
			// Fresh pattern after reset: 1 0 1 -> hit.
			"    din = 1; @(negedge clk); din = 0; @(negedge clk); din = 1; @(negedge clk);\n    $check_eq(found, 1'b1);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "lfsr8",
		Spec:       "An 8-bit Fibonacci LFSR with taps at bits 7, 5, 4 and 3 (polynomial x^8 + x^6 + x^5 + x^4 + 1): on each rising clock edge the register shifts left and the feedback bit (XOR of the taps) enters at bit 0. Synchronous reset loads 8'h01.",
		Difficulty: 4,
		TopModule:  "lfsr8",
		Reference: `module lfsr8(input clk, input rst, output reg [7:0] q);
  wire fb;
  assign fb = q[7] ^ q[5] ^ q[4] ^ q[3];
  always @(posedge clk) begin
    if (rst) q <= 8'h01;
    else q <= {q[6:0], fb};
  end
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst;
  wire [7:0] q;
  integer i;
  reg [7:0] model;
  reg fb;
  lfsr8 dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    @(negedge clk);
    rst = 0; model = 8'h01;
`,
		TBBlocks: []string{
			"    for (i = 0; i < 8; i = i + 1) begin\n      fb = model[7] ^ model[5] ^ model[4] ^ model[3];\n      model = {model[6:0], fb};\n      @(negedge clk);\n      $check_eq(q, model);\n    end\n",
			"    for (i = 0; i < 16; i = i + 1) begin\n      fb = model[7] ^ model[5] ^ model[4] ^ model[3];\n      model = {model[6:0], fb};\n      @(negedge clk);\n      $check_eq(q, model);\n    end\n",
			"    rst = 1; @(negedge clk);\n    $check_eq(q, 8'h01);\n    rst = 0; model = 8'h01;\n",
			"    for (i = 0; i < 4; i = i + 1) begin\n      fb = model[7] ^ model[5] ^ model[4] ^ model[3];\n      model = {model[6:0], fb};\n      @(negedge clk);\n      $check_eq(q, model);\n    end\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "edgedet",
		Spec:       "A rising-edge detector: pulse is high for exactly one clock cycle after the input sig transitions from 0 to 1. Synchronous active-high reset clears internal state.",
		Difficulty: 3,
		TopModule:  "edgedet",
		Reference: `module edgedet(input clk, input rst, input sig, output pulse);
  reg prev;
  always @(posedge clk) begin
    if (rst) prev <= 1'b0;
    else prev <= sig;
  end
  assign pulse = sig & ~prev;
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst, sig;
  wire pulse;
  edgedet dut(.clk(clk), .rst(rst), .sig(sig), .pulse(pulse));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; sig = 0;
    @(negedge clk);
    rst = 0;
`,
		TBBlocks: []string{
			"    $check_eq(pulse, 1'b0);\n    sig = 1;\n    #1;\n    $check_eq(pulse, 1'b1);\n",
			"    @(negedge clk);\n    $check_eq(pulse, 1'b0);\n",
			"    @(negedge clk);\n    $check_eq(pulse, 1'b0);\n    sig = 0; @(negedge clk);\n    $check_eq(pulse, 1'b0);\n",
			"    sig = 1; #1;\n    $check_eq(pulse, 1'b1);\n    @(negedge clk);\n    $check_eq(pulse, 1'b0);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	ps = append(ps, &Problem{
		ID:         "pwm4",
		Spec:       "A 4-bit PWM generator: a free-running 4-bit counter increments each rising clock edge (synchronous reset clears it); output out is 1 while the counter value is strictly less than the duty input.",
		Difficulty: 4,
		TopModule:  "pwm4",
		Reference: `module pwm4(input clk, input rst, input [3:0] duty, output out);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else cnt <= cnt + 4'd1;
  end
  assign out = cnt < duty;
endmodule
`,
		TBHeader: `module tb;
  reg clk, rst;
  reg [3:0] duty;
  wire out;
  integer i, highs;
  pwm4 dut(.clk(clk), .rst(rst), .duty(duty), .out(out));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; duty = 4'd4;
    @(negedge clk);
    rst = 0;
`,
		TBBlocks: []string{
			// duty=4: out high for counts 0..3 of each 16-cycle period.
			"    highs = 0;\n    for (i = 0; i < 16; i = i + 1) begin\n      if (out) highs = highs + 1;\n      @(negedge clk);\n    end\n    $check_eq(highs, 4);\n",
			"    duty = 4'd12; highs = 0;\n    for (i = 0; i < 16; i = i + 1) begin\n      if (out) highs = highs + 1;\n      @(negedge clk);\n    end\n    $check_eq(highs, 12);\n",
			"    duty = 4'd0; highs = 0;\n    for (i = 0; i < 16; i = i + 1) begin\n      if (out) highs = highs + 1;\n      @(negedge clk);\n    end\n    $check_eq(highs, 0);\n",
			"    duty = 4'd15; highs = 0;\n    for (i = 0; i < 16; i = i + 1) begin\n      if (out) highs = highs + 1;\n      @(negedge clk);\n    end\n    $check_eq(highs, 15);\n",
		},
		TBFooter: "    $finish;\n  end\nendmodule\n",
	})

	return ps
}
