// Package benchset provides the VerilogEval-style benchmark suite the
// AutoChip/VRank experiments evaluate on: natural-language specs, hidden
// reference implementations, and high-quality self-checking testbenches
// (AutoChip's required input). Problems span combinational logic,
// arithmetic, sequential logic and FSMs with difficulties 1-5.
//
// Combinational testbenches are generated from Go golden functions, so
// reference implementations are correct by construction and the checks
// cover the input space systematically; sequential testbenches are
// hand-written cycle scripts.
package benchset

import (
	"fmt"
	"strings"
	"sync"
)

// Port describes one DUT port for testbench construction.
type Port struct {
	Name  string
	Width int
	// IsInput is true for stimulus ports.
	IsInput bool
}

// Problem is one benchmark entry.
type Problem struct {
	ID         string
	Spec       string
	Difficulty int // 1..5
	TopModule  string
	// Reference is the hidden ground-truth implementation (the simulated
	// LLM's latent knowledge).
	Reference string
	// Testbench pieces: Header + Blocks + Footer concatenate into the
	// full self-checking bench with top module "tb". The split exists so
	// the testbench-generation task can model coverage loss.
	TBHeader string
	TBBlocks []string
	TBFooter string
	// Ports lists the DUT interface for combinational problems (empty for
	// sequential ones); the cross-level checker drives stimuli through it.
	Ports []Port
	// CModel is an untimed C behavioral reference (one function per
	// output port, named like the port) used by the high-level-guided
	// debugging extension; empty when not provided.
	CModel string
	// XAlign maps extra C model functions to RTL signal names inside the
	// DUT (relative to the instance) for cross-level trace alignment:
	// name matching covers the output ports automatically, and this
	// per-problem override table extends the alignment to internal
	// signals the C model also exposes (e.g. satadd8's 9-bit "full"
	// intermediate). Nil when port-name matching is sufficient.
	XAlign map[string]string

	// tb memoizes the concatenated testbench: every framework scores
	// whole candidate batches against it, and rebuilding the multi-KB
	// source per score was a measurable allocation cost. The pieces
	// above are treated as immutable after construction.
	tbOnce sync.Once
	tb     string
}

// Testbench returns the full reference testbench.
func (p *Problem) Testbench() string {
	p.tbOnce.Do(func() {
		var b strings.Builder
		n := len(p.TBHeader) + len(p.TBFooter)
		for _, blk := range p.TBBlocks {
			n += len(blk)
		}
		b.Grow(n)
		b.WriteString(p.TBHeader)
		for _, blk := range p.TBBlocks {
			b.WriteString(blk)
		}
		b.WriteString(p.TBFooter)
		p.tb = b.String()
	})
	return p.tb
}

// Checks returns the number of $check_eq checks in the full testbench.
func (p *Problem) Checks() int {
	return strings.Count(p.Testbench(), "$check_eq")
}

// combProblem builds a combinational problem: the testbench enumerates the
// given input vectors and checks every output against the golden function.
func combProblem(id, spec string, difficulty int, top, reference string,
	ports []Port, golden func(in map[string]uint64) map[string]uint64,
	vectors []map[string]uint64) *Problem {

	var header strings.Builder
	header.WriteString("module tb;\n")
	var conns []string
	for _, p := range ports {
		kind := "wire"
		if p.IsInput {
			kind = "reg"
		}
		if p.Width > 1 {
			fmt.Fprintf(&header, "  %s [%d:0] %s;\n", kind, p.Width-1, p.Name)
		} else {
			fmt.Fprintf(&header, "  %s %s;\n", kind, p.Name)
		}
		conns = append(conns, fmt.Sprintf(".%s(%s)", p.Name, p.Name))
	}
	fmt.Fprintf(&header, "  %s dut(%s);\n", top, strings.Join(conns, ", "))
	header.WriteString("  initial begin\n")

	var blocks []string
	for _, vec := range vectors {
		var blk strings.Builder
		for _, p := range ports {
			if p.IsInput {
				fmt.Fprintf(&blk, "    %s = %d'd%d;\n", p.Name, p.Width, vec[p.Name]&maskBits(p.Width))
			}
		}
		blk.WriteString("    #1;\n")
		out := golden(vec)
		for _, p := range ports {
			if !p.IsInput {
				fmt.Fprintf(&blk, "    $check_eq(%s, %d'd%d);\n", p.Name, p.Width, out[p.Name]&maskBits(p.Width))
			}
		}
		blocks = append(blocks, blk.String())
	}

	footer := "    $finish;\n  end\nendmodule\n"
	return &Problem{
		ID: id, Spec: spec, Difficulty: difficulty, TopModule: top,
		Reference: reference,
		TBHeader:  header.String(), TBBlocks: blocks, TBFooter: footer,
		Ports: ports,
	}
}

func maskBits(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// sweep2 enumerates the cross product of two input ranges.
func sweep2(aName string, aN uint64, bName string, bN uint64) []map[string]uint64 {
	var out []map[string]uint64
	for a := uint64(0); a < aN; a++ {
		for b := uint64(0); b < bN; b++ {
			out = append(out, map[string]uint64{aName: a, bName: b})
		}
	}
	return out
}

// sample2 samples deterministic pseudo-random pairs for wide inputs.
func sample2(aName string, aW int, bName string, bW int, n int) []map[string]uint64 {
	var out []map[string]uint64
	state := uint64(0x1234_5678_9ABC_DEF0)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		out = append(out, map[string]uint64{
			aName: next() & maskBits(aW),
			bName: next() & maskBits(bW),
		})
	}
	return out
}

// sweep1 enumerates one input.
func sweep1(name string, n uint64) []map[string]uint64 {
	var out []map[string]uint64
	for v := uint64(0); v < n; v++ {
		out = append(out, map[string]uint64{name: v})
	}
	return out
}

// Suite returns the full benchmark suite, ordered by ID.
func Suite() []*Problem {
	var ps []*Problem
	ps = append(ps, combSuite()...)
	ps = append(ps, seqSuite()...)
	return attachCModels(ps)
}

// ByID returns the named problem, or nil.
func ByID(id string) *Problem {
	for _, p := range Suite() {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// EightDesignSet returns the 8-problem subset mirroring the benchmark set
// of the paper's structured conversational flow study [10]: mostly
// sequential designs of the same classes that study used (shift register,
// sequence detector, LFSR, PWM, counters, edge logic).
func EightDesignSet() []*Problem {
	ids := []string{"shift4", "det101", "lfsr8", "pwm4", "counter8", "updown4", "edgedet", "adder4"}
	var out []*Problem
	for _, id := range ids {
		if p := ByID(id); p != nil {
			out = append(out, p)
		}
	}
	return out
}
