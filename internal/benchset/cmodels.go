package benchset

// Untimed C behavioral models for the combinational problems: the paper's
// §VI "High-Level Guided RTL Debugging" direction leans on LLMs being
// much more reliable at untimed C than at HDL; these models are what such
// a generation produces. One C function per output port, named after the
// port, taking the input ports in declaration order.

// cModels maps problem ID to its C behavioral model.
var cModels = map[string]string{
	"not1": `
int y(int a) { return (~a) & 1; }`,
	"and4": `
int y(int a, int b) { return a & b & 15; }`,
	"mux2": `
int y(int sel, int a, int b) { return sel ? b : a; }`,
	"adder4": `
int sum(int a, int b, int cin) { return (a + b + cin) & 15; }
int cout(int a, int b, int cin) { return (a + b + cin) >> 4; }`,
	"sub8": `
int diff(int a, int b) { return (a - b) & 255; }
int borrow(int a, int b) { return a < b ? 1 : 0; }`,
	"mux4": `
int y(int sel, int a, int b, int c, int d) {
    if (sel == 0) return a;
    if (sel == 1) return b;
    if (sel == 2) return c;
    return d;
}`,
	"dec3to8": `
int y(int en, int sel) { return en ? (1 << sel) & 255 : 0; }`,
	"enc8to3": `
int y(int a) {
    for (int i = 7; i > 0; i--) {
        if ((a >> i) & 1) return i;
    }
    return 0;
}
int valid(int a) { return a != 0 ? 1 : 0; }`,
	"parity8": `
int p(int a) {
    int x = a;
    x ^= x >> 4;
    x ^= x >> 2;
    x ^= x >> 1;
    return x & 1;
}`,
	"popcount8": `
int c(int a) {
    int n = 0;
    for (int i = 0; i < 8; i++) n += (a >> i) & 1;
    return n;
}`,
	"alu8": `
int y(int op, int a, int b) {
    if (op == 0) return (a + b) & 255;
    if (op == 1) return (a - b) & 255;
    if (op == 2) return a & b;
    return a ^ b;
}`,
	"cmp8": `
int eq(int a, int b) { return a == b ? 1 : 0; }
int lt(int a, int b) { return a < b ? 1 : 0; }
int gt(int a, int b) { return a > b ? 1 : 0; }`,
	"absdiff8": `
int y(int a, int b) { return a > b ? a - b : b - a; }`,
	"minmax8": `
int mn(int a, int b) { return a < b ? a : b; }
int mx(int a, int b) { return a < b ? b : a; }`,
	"barrel8": `
int s1(int a, int sh) { return (sh & 1) ? (a << 1) & 255 : a; }
int s2(int a, int sh) { int t = s1(a, sh); return (sh & 2) ? (t << 2) & 255 : t; }
int y(int a, int sh) { return (a << sh) & 255; }`,
	"gray4": `
int g(int b) { return (b ^ (b >> 1)) & 15; }`,
	"satadd8": `
int full(int a, int b) { return (a + b) & 511; }
int y(int a, int b) {
    int t = a + b;
    if (t > 255) t = 255;
    return t;
}`,
	"mult4": `
int p(int a, int b) { return (a * b) & 255; }`,
}

// xAligns is the per-problem cross-level alignment override table: extra
// C model functions (beyond the output ports, which align by name) and
// the internal RTL signal each one models. The cross-level debugger
// traces these signals too, so a divergence inside a multi-stage design
// localizes to the first wrong *stage*, not just the final output.
var xAligns = map[string]map[string]string{
	"barrel8": {"s1": "s1", "s2": "s2"},
	"satadd8": {"full": "full"},
}

// attachCModels wires the C models onto the suite (called from combSuite
// consumers via Suite()).
func attachCModels(ps []*Problem) []*Problem {
	for _, p := range ps {
		if m, ok := cModels[p.ID]; ok {
			p.CModel = m
		}
		if a, ok := xAligns[p.ID]; ok {
			p.XAlign = a
		}
	}
	return ps
}
