package hls

import (
	"fmt"
	"strings"

	"llm4eda/internal/chdl"
)

// codegen lowers one kernel to an FSM: one state per C statement, with
// memories for arrays and an ap_start/ap_done handshake. The style matches
// what a baseline (un-pipelined) HLS flow emits.
type codegen struct {
	prog *chdl.Program
	fn   *chdl.FuncDecl
	opts Options

	states   []*fsmState
	regs     map[string]bool // verilog reg names
	regOrder []string
	mems     map[string]memInfo
	memOrder []string
	scopes   []map[string]string // C name -> verilog storage name
	renameN  int
	warnings []string

	startAssigns []string // executed in the idle state on ap_start
	doneState    int
	entryState   int

	loops []loopCtx
}

type memInfo struct {
	name  string
	words int
}

type loopCtx struct {
	breakPatches []patchRef
	continueTo   int
}

type fsmState struct {
	assigns   []string
	condExpr  string // when set, branch: cond ? nextTrue : nextFalse
	nextTrue  int
	nextFalse int
	done      bool
}

type patchRef struct {
	state   int
	onFalse bool
}

const maxStates = 4000

func newCodegen(prog *chdl.Program, fn *chdl.FuncDecl, opts Options) *codegen {
	return &codegen{
		prog: prog, fn: fn, opts: opts,
		regs: map[string]bool{}, mems: map[string]memInfo{},
		scopes: []map[string]string{{}},
	}
}

func (g *codegen) paramNames() []string {
	names := make([]string, len(g.fn.Params))
	for i, p := range g.fn.Params {
		names[i] = p.Name
	}
	return names
}

func (g *codegen) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("hls codegen at line %d: %s", line, fmt.Sprintf(format, args...))
}

func (g *codegen) newState() int {
	g.states = append(g.states, &fsmState{nextTrue: -1, nextFalse: -1})
	return len(g.states) - 1
}

func (g *codegen) pushScope() { g.scopes = append(g.scopes, map[string]string{}) }
func (g *codegen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) lookup(name string) (string, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v, true
		}
	}
	return "", false
}

// declareReg binds a C scalar to a fresh verilog reg.
func (g *codegen) declareReg(name string) string {
	v := "v_" + name
	if g.regs[v] {
		g.renameN++
		v = fmt.Sprintf("v_%s_%d", name, g.renameN)
	}
	g.regs[v] = true
	g.regOrder = append(g.regOrder, v)
	g.scopes[len(g.scopes)-1][name] = v
	return v
}

// declareMem binds a C array to a verilog memory.
func (g *codegen) declareMem(name string, words int) (string, error) {
	total := words
	for _, m := range g.mems {
		total += m.words
	}
	if total > g.opts.MaxMemWords {
		return "", fmt.Errorf("hls: memory budget exceeded (%d words)", total)
	}
	v := "mem_" + name
	if _, dup := g.mems[v]; dup {
		g.renameN++
		v = fmt.Sprintf("mem_%s_%d", name, g.renameN)
	}
	g.mems[v] = memInfo{name: v, words: words}
	g.memOrder = append(g.memOrder, v)
	g.scopes[len(g.scopes)-1][name] = v
	return v, nil
}

// run builds the FSM.
func (g *codegen) run() error {
	// Parameters: copied from input ports when ap_start fires.
	for _, p := range g.fn.Params {
		switch p.Type.Kind {
		case chdl.KindPtr, chdl.KindArray:
			return g.errorf(p.Line, "array/pointer parameter %q: the subset synthesizes kernels with scalar interfaces; make the buffer kernel-local", p.Name)
		}
		reg := g.declareReg(p.Name)
		g.startAssigns = append(g.startAssigns, fmt.Sprintf("%s <= arg_%s;", reg, p.Name))
	}
	// Globals: scalars initialize on start; arrays initialize in states.
	var globalInitStates []int
	for _, gl := range g.prog.Globals {
		switch gl.Type.Kind {
		case chdl.KindArray:
			words := gl.Type.ArrayLen
			if words < 0 {
				words = len(gl.InitList)
			}
			mem, err := g.declareMem(gl.Name, words)
			if err != nil {
				return err
			}
			for i, e := range gl.InitList {
				val, err := g.expr(e)
				if err != nil {
					return err
				}
				s := g.newState()
				g.states[s].assigns = append(g.states[s].assigns,
					fmt.Sprintf("%s[%d] <= %s;", mem, i, val))
				globalInitStates = append(globalInitStates, s)
			}
		case chdl.KindPtr:
			return g.errorf(gl.Line, "global pointer %q is not synthesizable", gl.Name)
		default:
			reg := g.declareReg(gl.Name)
			init := "0"
			if gl.Init != nil {
				v, err := g.expr(gl.Init)
				if err != nil {
					return err
				}
				init = v
			}
			g.startAssigns = append(g.startAssigns, fmt.Sprintf("%s <= %s;", reg, init))
		}
	}

	entry, exits, err := g.genStmt(g.fn.Body)
	if err != nil {
		return err
	}
	g.doneState = g.newState()
	g.states[g.doneState].done = true
	g.patch(exits, g.doneState)

	// Chain global-array init states before the body entry.
	first := entry
	for i := len(globalInitStates) - 1; i >= 0; i-- {
		g.states[globalInitStates[i]].nextTrue = first
		first = globalInitStates[i]
	}
	// State 0 is reserved for idle in emit; remap by +1 offset there.
	g.entryState = first

	if len(g.states) > maxStates {
		return fmt.Errorf("hls: kernel needs %d states (> %d); reduce code size", len(g.states), maxStates)
	}
	return nil
}

func (g *codegen) patch(ps []patchRef, target int) {
	for _, p := range ps {
		if p.onFalse {
			g.states[p.state].nextFalse = target
		} else {
			g.states[p.state].nextTrue = target
		}
	}
}

// genStmt emits states for one statement; it returns the entry state and
// the dangling exits to patch to the successor. entry == -1 means the
// statement emitted nothing (empty block).
func (g *codegen) genStmt(st chdl.Stmt) (int, []patchRef, error) {
	switch n := st.(type) {
	case nil, *chdl.PragmaStmt:
		return -1, nil, nil

	case *chdl.BlockStmt:
		g.pushScope()
		defer g.popScope()
		entry := -1
		var exits []patchRef
		for _, s := range n.Stmts {
			e, x, err := g.genStmt(s)
			if err != nil {
				return 0, nil, err
			}
			if e == -1 {
				continue
			}
			if entry == -1 {
				entry = e
			} else {
				g.patch(exits, e)
			}
			exits = x
		}
		return entry, exits, nil

	case *chdl.DeclStmt:
		entry := -1
		var exits []patchRef
		link := func(s int) {
			if entry == -1 {
				entry = s
			} else {
				g.patch(exits, s)
			}
			exits = []patchRef{{state: s}}
		}
		for _, d := range n.Decls {
			switch d.Type.Kind {
			case chdl.KindPtr:
				return 0, nil, g.errorf(d.Line, "pointer variable %q is not synthesizable", d.Name)
			case chdl.KindArray:
				words := d.Type.ArrayLen
				if words < 0 {
					words = len(d.InitList)
				}
				if words <= 0 {
					return 0, nil, g.errorf(d.Line, "array %q has no static size", d.Name)
				}
				if d.Type.Elem.Kind == chdl.KindArray {
					return 0, nil, g.errorf(d.Line, "multi-dimensional array %q unsupported; flatten it", d.Name)
				}
				mem, err := g.declareMem(d.Name, words)
				if err != nil {
					return 0, nil, err
				}
				for i, e := range d.InitList {
					val, err := g.expr(e)
					if err != nil {
						return 0, nil, err
					}
					s := g.newState()
					g.states[s].assigns = append(g.states[s].assigns, fmt.Sprintf("%s[%d] <= %s;", mem, i, val))
					link(s)
				}
			default:
				reg := g.declareReg(d.Name)
				init := "0"
				if d.Init != nil {
					v, err := g.expr(d.Init)
					if err != nil {
						return 0, nil, err
					}
					init = v
				}
				s := g.newState()
				g.states[s].assigns = append(g.states[s].assigns, fmt.Sprintf("%s <= %s;", reg, init))
				link(s)
			}
		}
		return entry, exits, nil

	case *chdl.ExprStmt:
		return g.genExprStmt(n.X, n.Line)

	case *chdl.IfStmt:
		cond, err := g.expr(n.Cond)
		if err != nil {
			return 0, nil, err
		}
		cs := g.newState()
		g.states[cs].condExpr = cond
		thenEntry, thenExits, err := g.genStmt(n.Then)
		if err != nil {
			return 0, nil, err
		}
		var exits []patchRef
		if thenEntry == -1 {
			exits = append(exits, patchRef{state: cs})
		} else {
			g.states[cs].nextTrue = thenEntry
			exits = append(exits, thenExits...)
		}
		if n.Else != nil {
			elseEntry, elseExits, err := g.genStmt(n.Else)
			if err != nil {
				return 0, nil, err
			}
			if elseEntry == -1 {
				exits = append(exits, patchRef{state: cs, onFalse: true})
			} else {
				g.states[cs].nextFalse = elseEntry
				exits = append(exits, elseExits...)
			}
		} else {
			exits = append(exits, patchRef{state: cs, onFalse: true})
		}
		return cs, exits, nil

	case *chdl.ForStmt:
		g.pushScope()
		defer g.popScope()
		entry := -1
		var preExits []patchRef
		if n.Init != nil {
			e, x, err := g.genStmt(n.Init)
			if err != nil {
				return 0, nil, err
			}
			entry, preExits = e, x
		}
		condState := g.newState()
		if n.Cond != nil {
			cond, err := g.expr(n.Cond)
			if err != nil {
				return 0, nil, err
			}
			g.states[condState].condExpr = cond
		}
		if entry == -1 {
			entry = condState
		} else {
			g.patch(preExits, condState)
		}

		g.loops = append(g.loops, loopCtx{})
		bodyEntry, bodyExits, err := g.genStmt(n.Body)
		if err != nil {
			return 0, nil, err
		}
		var postEntry int
		var postExits []patchRef
		if n.Post != nil {
			e, x, err := g.genExprStmt(n.Post, n.Line)
			if err != nil {
				return 0, nil, err
			}
			postEntry, postExits = e, x
		} else {
			postEntry = -1
		}
		backTarget := condState
		if postEntry != -1 {
			g.patch(postExits, condState)
			backTarget = postEntry
		}
		if bodyEntry == -1 {
			g.states[condState].nextTrue = backTarget
		} else {
			g.states[condState].nextTrue = bodyEntry
			g.patch(bodyExits, backTarget)
		}
		lc := g.loops[len(g.loops)-1]
		g.loops = g.loops[:len(g.loops)-1]
		for _, br := range lc.breakPatches {
			// patched to successor below via exits
			_ = br
		}
		exits := append([]patchRef{{state: condState, onFalse: true}}, lc.breakPatches...)
		// continue jumps to post (or cond).
		_ = lc.continueTo
		return entry, exits, nil

	case *chdl.WhileStmt:
		condState := g.newState()
		cond, err := g.expr(n.Cond)
		if err != nil {
			return 0, nil, err
		}
		g.states[condState].condExpr = cond
		g.loops = append(g.loops, loopCtx{})
		bodyEntry, bodyExits, err := g.genStmt(n.Body)
		if err != nil {
			return 0, nil, err
		}
		if bodyEntry == -1 {
			g.states[condState].nextTrue = condState
		} else {
			g.states[condState].nextTrue = bodyEntry
			g.patch(bodyExits, condState)
		}
		lc := g.loops[len(g.loops)-1]
		g.loops = g.loops[:len(g.loops)-1]
		exits := append([]patchRef{{state: condState, onFalse: true}}, lc.breakPatches...)
		return condState, exits, nil

	case *chdl.DoStmt:
		g.loops = append(g.loops, loopCtx{})
		bodyEntry, bodyExits, err := g.genStmt(n.Body)
		if err != nil {
			return 0, nil, err
		}
		condState := g.newState()
		cond, err := g.expr(n.Cond)
		if err != nil {
			return 0, nil, err
		}
		g.states[condState].condExpr = cond
		if bodyEntry == -1 {
			bodyEntry = condState
		}
		g.patch(bodyExits, condState)
		g.states[condState].nextTrue = bodyEntry
		lc := g.loops[len(g.loops)-1]
		g.loops = g.loops[:len(g.loops)-1]
		exits := append([]patchRef{{state: condState, onFalse: true}}, lc.breakPatches...)
		return bodyEntry, exits, nil

	case *chdl.ReturnStmt:
		s := g.newState()
		val := "0"
		if n.X != nil {
			v, err := g.expr(n.X)
			if err != nil {
				return 0, nil, err
			}
			val = v
		}
		g.states[s].assigns = append(g.states[s].assigns, fmt.Sprintf("ap_return <= %s;", val))
		g.states[s].nextTrue = -2 // resolved to done state in emit
		return s, nil, nil

	case *chdl.BreakStmt:
		if len(g.loops) == 0 {
			return 0, nil, g.errorf(n.Line, "break outside loop")
		}
		s := g.newState()
		lc := &g.loops[len(g.loops)-1]
		lc.breakPatches = append(lc.breakPatches, patchRef{state: s})
		return s, nil, nil

	case *chdl.ContinueStmt:
		return 0, nil, g.errorf(n.Line, "continue is not supported by the HLS subset; restructure the loop")

	default:
		return 0, nil, g.errorf(0, "unsupported statement %T", st)
	}
}

// genExprStmt emits the state for an effectful expression statement.
func (g *codegen) genExprStmt(e chdl.Expr, line int) (int, []patchRef, error) {
	switch n := e.(type) {
	case *chdl.AssignExpr:
		rhs, err := g.expr(n.RHS)
		if err != nil {
			return 0, nil, err
		}
		lhs, err := g.lvalue(n.LHS)
		if err != nil {
			return 0, nil, err
		}
		val := rhs
		if n.Op != "=" {
			cur, err := g.expr(n.LHS)
			if err != nil {
				return 0, nil, err
			}
			val = fmt.Sprintf("(%s %s %s)", cur, strings.TrimSuffix(n.Op, "="), rhs)
		}
		s := g.newState()
		g.states[s].assigns = append(g.states[s].assigns, fmt.Sprintf("%s <= %s;", lhs, val))
		return s, []patchRef{{state: s}}, nil

	case *chdl.PostfixExpr, *chdl.UnExpr:
		var target chdl.Expr
		var op string
		if pf, ok := e.(*chdl.PostfixExpr); ok {
			target, op = pf.X, pf.Op
		} else {
			un := e.(*chdl.UnExpr)
			if un.Op != "++" && un.Op != "--" {
				return 0, nil, g.errorf(line, "expression statement %q has no effect", un.Op)
			}
			target, op = un.X, un.Op
		}
		cur, err := g.expr(target)
		if err != nil {
			return 0, nil, err
		}
		lhs, err := g.lvalue(target)
		if err != nil {
			return 0, nil, err
		}
		verb := "+"
		if op == "--" {
			verb = "-"
		}
		s := g.newState()
		g.states[s].assigns = append(g.states[s].assigns, fmt.Sprintf("%s <= %s %s 1;", lhs, cur, verb))
		return s, []patchRef{{state: s}}, nil

	case *chdl.CallExpr:
		if n.Name == "printf" || n.Name == "puts" || n.Name == "putchar" {
			g.warnings = append(g.warnings, fmt.Sprintf("line %d: %s ignored during synthesis", n.Line, n.Name))
			return -1, nil, nil
		}
		return 0, nil, g.errorf(n.Line, "call to %q: the subset inlines no function calls; flatten the kernel", n.Name)

	default:
		return 0, nil, g.errorf(line, "expression statement %T has no synthesizable effect", e)
	}
}

// lvalue renders an assignable target.
func (g *codegen) lvalue(e chdl.Expr) (string, error) {
	switch n := e.(type) {
	case *chdl.VarRef:
		v, ok := g.lookup(n.Name)
		if !ok {
			return "", g.errorf(n.Line, "undefined variable %q", n.Name)
		}
		if strings.HasPrefix(v, "mem_") {
			return "", g.errorf(n.Line, "array %q assigned without index", n.Name)
		}
		return v, nil
	case *chdl.IndexExpr:
		vr, ok := n.X.(*chdl.VarRef)
		if !ok {
			return "", g.errorf(n.Line, "only direct array indexing is synthesizable")
		}
		mem, ok := g.lookup(vr.Name)
		if !ok || !strings.HasPrefix(mem, "mem_") {
			return "", g.errorf(n.Line, "%q is not an array", vr.Name)
		}
		idx, err := g.expr(n.Idx)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", mem, idx), nil
	default:
		return "", g.errorf(0, "unsupported assignment target %T", e)
	}
}

// expr renders a C expression as Verilog over the kernel's registers.
func (g *codegen) expr(e chdl.Expr) (string, error) {
	w := g.opts.WidthBits
	switch n := e.(type) {
	case *chdl.IntLit:
		return fmt.Sprintf("%d'd%d", w, uint64(n.Val)&maskW(w)), nil
	case *chdl.VarRef:
		v, ok := g.lookup(n.Name)
		if !ok {
			return "", g.errorf(n.Line, "undefined variable %q", n.Name)
		}
		return v, nil
	case *chdl.BinExpr:
		x, err := g.expr(n.X)
		if err != nil {
			return "", err
		}
		y, err := g.expr(n.Y)
		if err != nil {
			return "", err
		}
		op := n.Op
		switch op {
		case "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
			"==", "!=", "<", "<=", ">", ">=":
			return fmt.Sprintf("(%s %s %s)", x, op, y), nil
		default:
			return "", g.errorf(n.Line, "operator %q is not synthesizable", op)
		}
	case *chdl.UnExpr:
		x, err := g.expr(n.X)
		if err != nil {
			return "", err
		}
		switch n.Op {
		case "-":
			return fmt.Sprintf("(%d'd0 - %s)", w, x), nil
		case "~":
			return fmt.Sprintf("(~%s)", x), nil
		case "!":
			return fmt.Sprintf("(!%s)", x), nil
		default:
			return "", g.errorf(n.Line, "unary %q is not synthesizable", n.Op)
		}
	case *chdl.CondExpr:
		c, err := g.expr(n.Cond)
		if err != nil {
			return "", err
		}
		t, err := g.expr(n.Then)
		if err != nil {
			return "", err
		}
		f, err := g.expr(n.Else)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s ? %s : %s)", c, t, f), nil
	case *chdl.IndexExpr:
		return g.lvalue(n)
	case *chdl.CallExpr:
		if n.Name == "abs" && len(n.Args) == 1 {
			x, err := g.expr(n.Args[0])
			if err != nil {
				return "", err
			}
			// Unsigned datapath: abs of a two's-complement value.
			return fmt.Sprintf("((%s >> %d) ? (%d'd0 - %s) : %s)", x, w-1, w, x, x), nil
		}
		return "", g.errorf(n.Line, "call to %q in expression is not synthesizable", n.Name)
	case *chdl.CastExpr:
		return g.expr(n.X)
	case *chdl.SizeofExpr:
		return fmt.Sprintf("%d'd1", w), nil
	default:
		return "", g.errorf(0, "unsupported expression %T", e)
	}
}

// emit renders the module. FSM state 0 is idle; generated states are
// shifted by +1; the done state returns to idle.
func (g *codegen) emit() string {
	w := g.opts.WidthBits
	var b strings.Builder
	fmt.Fprintf(&b, "module hls_%s(\n", g.fn.Name)
	b.WriteString("  input clk,\n  input rst,\n  input ap_start,\n  output reg ap_done,\n")
	for _, p := range g.fn.Params {
		fmt.Fprintf(&b, "  input [%d:0] arg_%s,\n", w-1, p.Name)
	}
	fmt.Fprintf(&b, "  output reg [%d:0] ap_return\n);\n", w-1)
	b.WriteString("  reg [15:0] state;\n")
	for _, r := range g.regOrder {
		fmt.Fprintf(&b, "  reg [%d:0] %s;\n", w-1, r)
	}
	for _, mname := range g.memOrder {
		m := g.mems[mname]
		fmt.Fprintf(&b, "  reg [%d:0] %s [0:%d];\n", w-1, m.name, m.words-1)
	}
	b.WriteString("\n  always @(posedge clk) begin\n")
	b.WriteString("    if (rst) begin\n      state <= 16'd0;\n      ap_done <= 1'b0;\n    end else begin\n")
	b.WriteString("      case (state)\n")
	// Idle.
	b.WriteString("        16'd0: begin\n          ap_done <= 1'b0;\n          if (ap_start) begin\n")
	fmt.Fprintf(&b, "            ap_return <= %d'd0;\n", w)
	for _, a := range g.startAssigns {
		fmt.Fprintf(&b, "            %s\n", a)
	}
	fmt.Fprintf(&b, "            state <= 16'd%d;\n", g.entryState+1)
	b.WriteString("          end\n        end\n")

	target := func(t int) int {
		switch t {
		case -1:
			return g.doneState + 1 // dangling exit: finish defensively
		case -2:
			return g.doneState + 1
		default:
			return t + 1
		}
	}
	for i, st := range g.states {
		fmt.Fprintf(&b, "        16'd%d: begin\n", i+1)
		if st.done {
			b.WriteString("          ap_done <= 1'b1;\n          state <= 16'd0;\n")
		} else {
			for _, a := range st.assigns {
				fmt.Fprintf(&b, "          %s\n", a)
			}
			if st.condExpr != "" {
				fmt.Fprintf(&b, "          state <= (%s) ? 16'd%d : 16'd%d;\n",
					st.condExpr, target(st.nextTrue), target(st.nextFalse))
			} else {
				fmt.Fprintf(&b, "          state <= 16'd%d;\n", target(st.nextTrue))
			}
		}
		b.WriteString("        end\n")
	}
	b.WriteString("        default: state <= 16'd0;\n")
	b.WriteString("      endcase\n    end\n  end\nendmodule\n")
	return b.String()
}
