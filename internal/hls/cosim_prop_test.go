package hls

import (
	"testing"
	"testing/quick"

	"llm4eda/internal/chdl"
)

// TestCoSimEquivalenceProperty is the substrate-level soundness property
// behind the whole Fig. 2/3 pipeline: for kernels in the agreeing domain
// (non-negative values, no 32-bit overflow), the generated RTL computes
// exactly what the C interpreter computes, across randomized inputs.
func TestCoSimEquivalenceProperty(t *testing.T) {
	src := `
int kern(int a, int b) {
    int acc = 0;
    int buf[8];
    for (int i = 0; i < 8; i++) {
        buf[i] = (a + i * 3) % 97;
    }
    for (int i = 0; i < 8; i++) {
        if (buf[i] > b % 97) {
            acc = acc + buf[i];
        } else {
            acc = acc + 1;
        }
    }
    return acc;
}`
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Synthesize(prog, "kern", Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	check := func(a, b uint16) bool {
		res, err := CoSimulate(d, prog, "kern", [][]int64{{int64(a), int64(b)}})
		if err != nil || len(res) != 1 {
			return false
		}
		return res[0].Match
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLatencyEstimateTracksMeasured verifies the analytic latency model is
// within a reasonable factor of the cycle count the RTL actually takes.
func TestLatencyEstimateTracksMeasured(t *testing.T) {
	src := `
int walk(int a) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc = acc + a * i;
    }
    return acc;
}`
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Synthesize(prog, "walk", Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	res, err := CoSimulate(d, prog, "walk", [][]int64{{5}})
	if err != nil || !res[0].Match {
		t.Fatalf("cosim: %v %+v", err, res)
	}
	est := float64(d.PPA.LatencyCyc)
	meas := float64(res[0].Cycles)
	if est < meas/3 || est > meas*3 {
		t.Errorf("latency estimate %v vs measured %v: off by more than 3x", est, meas)
	}
}
