package hls

import (
	"errors"
	"strings"
	"testing"

	"llm4eda/internal/chdl"
)

func parse(t *testing.T, src string) *chdl.Program {
	t.Helper()
	p, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	return p
}

func TestSynthesizeSimpleKernel(t *testing.T) {
	src := `
int scale(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc = acc + a * i + b;
    }
    return acc;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "scale", Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !strings.Contains(d.Verilog, "module hls_scale") {
		t.Fatalf("bad module:\n%s", d.Verilog)
	}
	results, err := CoSimulate(d, prog, "scale", [][]int64{{3, 4}, {10, 2}, {0, 0}, {7, 9}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("mismatch for %v: cpu=%d rtl=%d (valid=%v)", r.Inputs, r.CPU, r.RTL, r.RTLValid)
		}
		if r.Cycles == 0 {
			t.Errorf("no cycle count for %v", r.Inputs)
		}
	}
}

func TestSynthesizeArrayKernel(t *testing.T) {
	src := `
int movavg(int seed) {
    int buf[16];
    for (int i = 0; i < 16; i++) {
        buf[i] = (seed + i * 7) % 100;
    }
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc = acc + buf[i];
    }
    return acc / 16;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "movavg", Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	results, err := CoSimulate(d, prog, "movavg", [][]int64{{1}, {42}, {99}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("mismatch for %v: cpu=%d rtl=%d", r.Inputs, r.CPU, r.RTL)
		}
	}
}

func TestSynthesizeConditionals(t *testing.T) {
	src := `
int clampsum(int a, int b) {
    int s = a + b;
    if (s > 1000) {
        s = 1000;
    } else if (s < 0) {
        s = 0;
    }
    return s;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "clampsum", Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// Note: RTL comparisons are unsigned; keep the domain non-negative so
	// CPU and RTL agree (negative-domain divergence is the Fig. 3 topic).
	results, err := CoSimulate(d, prog, "clampsum", [][]int64{{500, 400}, {900, 200}, {0, 0}, {1, 2}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("mismatch for %v: cpu=%d rtl=%d", r.Inputs, r.CPU, r.RTL)
		}
	}
}

func TestRejectsMalloc(t *testing.T) {
	src := `
int bad(int n) {
    int *p = (int*)malloc(n);
    p[0] = 1;
    int r = p[0];
    free(p);
    return r;
}`
	prog := parse(t, src)
	_, err := Synthesize(prog, "bad", Options{})
	if !errors.Is(err, ErrNotSynthesizable) {
		t.Fatalf("expected ErrNotSynthesizable, got %v", err)
	}
	if !strings.Contains(err.Error(), "dynamic-memory") {
		t.Errorf("diagnostics missing: %v", err)
	}
}

func TestRejectsWhileLoop(t *testing.T) {
	src := `
int spin(int n) {
    while (n > 1) { n = n - 1; }
    return n;
}`
	prog := parse(t, src)
	_, err := Synthesize(prog, "spin", Options{})
	if !errors.Is(err, ErrNotSynthesizable) {
		t.Fatalf("expected ErrNotSynthesizable, got %v", err)
	}
}

func TestNarrowWidthCausesOverflowDiscrepancy(t *testing.T) {
	// With a 16-bit datapath, products overflow differently than 32-bit C:
	// exactly the Fig. 3 discrepancy class.
	src := `
int prodsum(int a) {
    int acc = 0;
    for (int i = 1; i <= 4; i++) {
        acc = acc + a * i;
    }
    return acc;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "prodsum", Options{WidthBits: 16})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	small, err := CoSimulate(d, prog, "prodsum", [][]int64{{3}})
	if err != nil || !small[0].Match {
		t.Fatalf("small input should match: %+v err=%v", small, err)
	}
	big, err := CoSimulate(d, prog, "prodsum", [][]int64{{50000}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	if big[0].Match {
		t.Errorf("expected overflow discrepancy at 16 bits, got match: %+v", big[0])
	}
}

func TestPPAPragmaSensitivity(t *testing.T) {
	base := `
int dot(int a, int b) {
    int x[32];
    int y[32];
    for (int i = 0; i < 32; i++) {
        x[i] = a + i;
    }
    for (int i = 0; i < 32; i++) {
        y[i] = b - i;
    }
    int acc = 0;
    for (int i = 0; i < 32; i++) {
        acc = acc + x[i] * y[i];
    }
    return acc;
}`
	pragma := strings.Replace(base,
		"    int acc = 0;\n    for (int i = 0; i < 32; i++) {\n        acc = acc + x[i] * y[i];\n    }",
		"    int acc = 0;\n    for (int i = 0; i < 32; i++) {\n#pragma HLS pipeline II=1\n#pragma HLS unroll factor=4\n        acc = acc + x[i] * y[i];\n    }", 1)
	dBase, err := Synthesize(parse(t, base), "dot", Options{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	dOpt, err := Synthesize(parse(t, pragma), "dot", Options{})
	if err != nil {
		t.Fatalf("pragma: %v", err)
	}
	if dOpt.PPA.LatencyCyc >= dBase.PPA.LatencyCyc {
		t.Errorf("pipelined latency %d >= base %d", dOpt.PPA.LatencyCyc, dBase.PPA.LatencyCyc)
	}
	if dOpt.PPA.AreaGates <= dBase.PPA.AreaGates {
		t.Errorf("unrolled area %.0f <= base %.0f", dOpt.PPA.AreaGates, dBase.PPA.AreaGates)
	}
}

func TestDiagnosticsFormat(t *testing.T) {
	diags := Diagnostics(`
int f(int *p) {
    int *q = (int*)malloc(4);
    free(q);
    return p[0];
}`)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	joined := strings.Join(diags, "\n")
	if !strings.Contains(joined, "dynamic-memory") {
		t.Errorf("missing malloc diagnostic: %s", joined)
	}
	if bad := Diagnostics("not c at all {{{"); len(bad) != 1 || !strings.Contains(bad[0], "hls frontend") {
		t.Errorf("parse failure diagnostics wrong: %v", bad)
	}
}

func TestBreakInLoop(t *testing.T) {
	src := `
int findfirst(int target) {
    int buf[16];
    for (int i = 0; i < 16; i++) {
        buf[i] = i * 3;
    }
    int found = 99;
    for (int i = 0; i < 16; i++) {
        if (buf[i] == target) {
            found = i;
            break;
        }
    }
    return found;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "findfirst", Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	results, err := CoSimulate(d, prog, "findfirst", [][]int64{{9}, {0}, {45}, {44}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("mismatch for %v: cpu=%d rtl=%d valid=%v", r.Inputs, r.CPU, r.RTL, r.RTLValid)
		}
	}
}

func TestGlobalArrayKernel(t *testing.T) {
	src := `
int lut[8] = {1, 2, 4, 8, 16, 32, 64, 128};
int lookup(int i) {
    return lut[i % 8] + i;
}`
	prog := parse(t, src)
	d, err := Synthesize(prog, "lookup", Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	results, err := CoSimulate(d, prog, "lookup", [][]int64{{0}, {3}, {7}, {12}})
	if err != nil {
		t.Fatalf("CoSimulate: %v", err)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("mismatch for %v: cpu=%d rtl=%d", r.Inputs, r.CPU, r.RTL)
		}
	}
}
