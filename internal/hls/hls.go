// Package hls implements the high-level-synthesis substrate of the Fig. 2/3
// case studies: it compiles chdl C kernels into FSM-style Verilog RTL
// (one state per statement, memories for arrays, an ap_start/ap_done
// handshake), reports Vitis-style diagnostics for HLS-incompatible
// constructs, estimates pragma-sensitive PPA, and runs C-RTL
// co-simulation against the chdl interpreter.
//
// The RTL datapath computes in unsigned fixed-width arithmetic (WidthBits,
// default 32) while the "CPU execution" reference computes in C semantics;
// customized narrower widths therefore produce exactly the class of
// behavioral discrepancies (overflow, truncation) the paper's Fig. 3
// framework hunts for.
package hls

import (
	"errors"
	"fmt"
	"strings"

	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// ErrNotSynthesizable wraps compilation rejections caused by blocking
// incompatibilities; the repair framework keys off this.
var ErrNotSynthesizable = errors.New("hls: kernel is not synthesizable")

// Options parameterize synthesis.
type Options struct {
	// WidthBits is the datapath width (default 32). Narrower widths model
	// "customized bit widths in FPGA deployment" and are a deliberate
	// discrepancy source for the Fig. 3 experiments.
	WidthBits int
	// ClockMHz sets the target clock for power estimation (default 100).
	ClockMHz float64
	// MaxMemWords bounds total memory cells (default 1 << 16).
	MaxMemWords int
}

func (o Options) withDefaults() Options {
	if o.WidthBits == 0 {
		o.WidthBits = 32
	}
	if o.WidthBits > 64 {
		o.WidthBits = 64
	}
	if o.ClockMHz == 0 {
		o.ClockMHz = 100
	}
	if o.MaxMemWords == 0 {
		o.MaxMemWords = 1 << 16
	}
	return o
}

// Design is the synthesis result.
type Design struct {
	// Verilog is the generated RTL.
	Verilog string
	// TopModule is the generated module name.
	TopModule string
	// Params lists the scalar parameter names in port order.
	Params []string
	// PPA is the analytic power/performance/area estimate.
	PPA core.PPA
	// States is the FSM state count.
	States int
	// Warnings carries non-blocking diagnostics (skipped printf etc.).
	Warnings []string
	opts     Options
}

// Synthesize compiles the named function of a chdl program to RTL.
// Blocking incompatibilities abort with ErrNotSynthesizable and the full
// diagnostic list in the error message — the "actual errors" of the
// paper's repair flow stage 1.
func Synthesize(prog *chdl.Program, fn string, opts Options) (*Design, error) {
	opts = opts.withDefaults()
	target := prog.FindFunc(fn)
	if target == nil {
		return nil, fmt.Errorf("hls: function %q not found", fn)
	}
	var blocking []string
	for _, issue := range chdl.Analyze(prog) {
		if issue.Kind.Blocking() {
			blocking = append(blocking, issue.String())
		}
	}
	if len(blocking) > 0 {
		return nil, fmt.Errorf("%w:\n%s", ErrNotSynthesizable, strings.Join(blocking, "\n"))
	}
	g := newCodegen(prog, target, opts)
	if err := g.run(); err != nil {
		return nil, err
	}
	d := &Design{
		Verilog:   g.emit(),
		TopModule: "hls_" + fn,
		Params:    g.paramNames(),
		States:    len(g.states),
		Warnings:  g.warnings,
		opts:      opts,
	}
	d.PPA = estimatePPA(prog, target, g, opts)
	return d, nil
}

// Diagnostics returns all analyzer findings of a source file formatted as
// HLS tool output; parse failures come back as a single diagnostic.
func Diagnostics(source string) []string {
	prog, err := chdl.ParseC(source)
	if err != nil {
		return []string{fmt.Sprintf("hls frontend: %v", err)}
	}
	var out []string
	for _, issue := range chdl.Analyze(prog) {
		out = append(out, issue.String())
	}
	return out
}

// --- PPA model --------------------------------------------------------------

// opCost tabulates NAND2-equivalent gate counts and intrinsic delays per
// operator at width w.
func opCost(op string, w float64) (gates, delayNS float64) {
	switch op {
	case "+", "-":
		return 9 * w, 0.05*w + 0.4
	case "*":
		return 5.5 * w * w, 0.12*w + 1.2
	case "/", "%":
		return 18 * w * w, 0.5*w + 3
	case "<<", ">>":
		return 3 * w * 5, 0.8
	case "&", "|", "^":
		return w, 0.15
	case "<", "<=", ">", ">=", "==", "!=":
		return 3 * w, 0.04*w + 0.3
	case "&&", "||", "!":
		return 2, 0.1
	default:
		return w, 0.3
	}
}

// loopInfo captures static trip counts and pragmas for latency estimation.
type loopInfo struct {
	trips    int
	ii       int
	unroll   int
	bodyOps  int
	bodyCost float64
}

// estimatePPA walks the kernel and folds operator costs, storage and
// pragma effects into the PPA triple. Pipelining divides effective loop
// latency by its initiation interval; unrolling multiplies datapath area
// by the factor while dividing trip count.
func estimatePPA(prog *chdl.Program, fn *chdl.FuncDecl, g *codegen, opts Options) core.PPA {
	w := float64(opts.WidthBits)
	var area, maxDelay float64
	var latency float64

	// Registers and memories.
	area += float64(len(g.regs)) * w * 7
	for _, m := range g.mems {
		area += float64(m.words) * w * 1.5
	}

	var walk func(st chdl.Stmt, unroll int, ii int) float64
	countExprOps := func(e chdl.Expr) (ops float64, gatesAcc float64, depth float64) {
		var rec func(e chdl.Expr) float64 // returns depth
		rec = func(e chdl.Expr) float64 {
			switch n := e.(type) {
			case *chdl.BinExpr:
				gts, d := opCost(n.Op, w)
				gatesAcc += gts
				ops++
				dx, dy := rec(n.X), rec(n.Y)
				if dy > dx {
					dx = dy
				}
				return dx + d
			case *chdl.UnExpr:
				gatesAcc += w
				ops++
				return rec(n.X) + 0.2
			case *chdl.AssignExpr:
				dx := rec(n.RHS)
				_ = rec(n.LHS)
				return dx
			case *chdl.CondExpr:
				gatesAcc += 3 * w
				ops++
				d := rec(n.Cond)
				dt, de := rec(n.Then), rec(n.Else)
				if de > dt {
					dt = de
				}
				return d + dt + 0.3
			case *chdl.IndexExpr:
				gatesAcc += 2 * w // address decode share
				ops++
				_ = rec(n.X)
				return rec(n.Idx) + 0.9
			case *chdl.PostfixExpr:
				gatesAcc += 9 * w
				ops++
				return rec(n.X) + 0.5
			case *chdl.CallExpr:
				for _, a := range n.Args {
					_ = rec(a)
				}
				return 0.5
			case *chdl.CastExpr:
				return rec(n.X)
			default:
				return 0
			}
		}
		depth = rec(e)
		return ops, gatesAcc, depth
	}

	walk = func(st chdl.Stmt, unroll, ii int) float64 {
		switch n := st.(type) {
		case nil:
			return 0
		case *chdl.BlockStmt:
			var cyc float64
			for _, s := range n.Stmts {
				cyc += walk(s, unroll, ii)
			}
			return cyc
		case *chdl.DeclStmt:
			var cyc float64
			for _, d := range n.Decls {
				if d.Init != nil {
					ops, gts, depth := countExprOps(d.Init)
					_ = ops
					area += gts * float64(unroll)
					if depth > maxDelay {
						maxDelay = depth
					}
					cyc++
				}
				cyc += float64(len(d.InitList))
			}
			return cyc
		case *chdl.ExprStmt:
			_, gts, depth := countExprOps(n.X)
			area += gts * float64(unroll)
			if depth > maxDelay {
				maxDelay = depth
			}
			return 1
		case *chdl.IfStmt:
			_, gts, depth := countExprOps(n.Cond)
			area += gts * float64(unroll)
			if depth > maxDelay {
				maxDelay = depth
			}
			thenCyc := walk(n.Then, unroll, ii)
			elseCyc := walk(n.Else, unroll, ii)
			if elseCyc > thenCyc {
				thenCyc = elseCyc
			}
			return 1 + thenCyc
		case *chdl.ForStmt:
			trips := staticTrips(n)
			u, pipeII := pragmaFactors(n.Pragmas)
			body := walk(n.Body, unroll*u, ii)
			if n.Init != nil {
				body += 1
			}
			perIter := body + 2 // condition + post
			effTrips := float64(trips) / float64(u)
			if pipeII > 0 {
				// Pipelined: depth + II*(trips-1).
				return perIter + float64(pipeII)*(effTrips-1)
			}
			return perIter * effTrips
		case *chdl.WhileStmt:
			body := walk(n.Body, unroll, ii)
			return (body + 1) * 16 // analyzer blocks these; nominal bound
		case *chdl.DoStmt:
			body := walk(n.Body, unroll, ii)
			return (body + 1) * 16
		case *chdl.ReturnStmt:
			if n.X != nil {
				_, gts, depth := countExprOps(n.X)
				area += gts * float64(unroll)
				if depth > maxDelay {
					maxDelay = depth
				}
			}
			return 1
		default:
			return 1
		}
	}
	latency = walk(fn.Body, 1, 0) + 2 // start/done handshake

	if maxDelay < 1 {
		maxDelay = 1
	}
	// Clock period must cover the worst state; power scales with area,
	// toggle activity and clock.
	const toggleRate = 0.18
	powerMW := area*toggleRate*opts.ClockMHz*0.000012 + area*0.00045
	return core.PPA{
		AreaGates:  area,
		DelayNS:    maxDelay,
		PowerMW:    powerMW,
		LatencyCyc: int(latency),
	}
}

// staticTrips extracts the trip count of a canonical bounded loop
// (for i = C0; i < C1; i += C2), defaulting to 16.
func staticTrips(n *chdl.ForStmt) int {
	start := int64(0)
	if ds, ok := n.Init.(*chdl.DeclStmt); ok && len(ds.Decls) == 1 && ds.Decls[0].Init != nil {
		if lit, ok := ds.Decls[0].Init.(*chdl.IntLit); ok {
			start = lit.Val
		}
	}
	if es, ok := n.Init.(*chdl.ExprStmt); ok {
		if asn, ok := es.X.(*chdl.AssignExpr); ok {
			if lit, ok := asn.RHS.(*chdl.IntLit); ok {
				start = lit.Val
			}
		}
	}
	cond, ok := n.Cond.(*chdl.BinExpr)
	if !ok {
		return 16
	}
	lim, ok := cond.Y.(*chdl.IntLit)
	if !ok {
		return 16
	}
	span := lim.Val - start
	if cond.Op == "<=" {
		span++
	}
	if span <= 0 {
		return 1
	}
	if span > 1<<20 {
		return 1 << 20
	}
	return int(span)
}

// pragmaFactors extracts unroll factor and pipeline II from loop pragmas.
func pragmaFactors(pragmas []*chdl.Pragma) (unroll, ii int) {
	unroll = 1
	for _, p := range pragmas {
		switch p.Directive {
		case "unroll":
			if f := atoiDefault(p.Args["factor"], 2); f > 1 {
				unroll = f
			}
		case "pipeline":
			ii = atoiDefault(p.Args["ii"], 1)
		}
	}
	return unroll, ii
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	if n == 0 {
		return def
	}
	return n
}

// --- co-simulation -----------------------------------------------------------

// CoSimResult reports one C-RTL co-simulation vector outcome.
type CoSimResult struct {
	Inputs   []int64
	CPU      int64 // chdl interpreter result
	RTL      int64 // simulated hardware result
	RTLValid bool  // ap_done reached
	Cycles   uint64
	Match    bool
	// CPUErr records interpreter faults (the vector is then skipped for
	// equivalence purposes but still reported).
	CPUErr error
}

// CoSimulate runs the kernel and its RTL on each input vector and compares
// results: stage 3 of the Fig. 2 flow ("C-RTL co-simulation") and the
// simulation backend of the Fig. 3 tester.
func CoSimulate(d *Design, prog *chdl.Program, fn string, vectors [][]int64) ([]CoSimResult, error) {
	target := prog.FindFunc(fn)
	if target == nil {
		return nil, fmt.Errorf("hls: function %q not found", fn)
	}
	if len(d.Params) != len(target.Params) {
		return nil, fmt.Errorf("hls: design/function parameter mismatch")
	}
	for _, vec := range vectors {
		if len(vec) != len(d.Params) {
			return nil, fmt.Errorf("hls: vector has %d values, kernel takes %d", len(vec), len(d.Params))
		}
	}

	// The generated RTL is fixed across vectors; only the one-vector
	// testbench changes. Batch the RTL runs through simfarm so the DUT
	// parses once and the vectors simulate in parallel.
	jobs := make([]simfarm.Job, len(vectors))
	for i, vec := range vectors {
		jobs[i] = simfarm.Job{
			DUT: d.Verilog, TB: buildCoSimTB(d, vec), Top: "cosim_tb",
			DUTTop: d.TopModule, Lint: true,
			Opts: verilog.SimOptions{MaxTime: 4_000_000, MaxSteps: 8_000_000},
		}
	}
	rtlRuns := simfarm.RunMany(jobs, 0)

	out := make([]CoSimResult, 0, len(vectors))
	for i, vec := range vectors {
		r := CoSimResult{Inputs: append([]int64(nil), vec...)}

		in, err := chdl.NewInterp(prog, chdl.InterpOptions{})
		if err != nil {
			return nil, err
		}
		cpu, err := in.CallInts(fn, vec...)
		if err != nil {
			r.CPUErr = err
		} else {
			r.CPU = cpu
		}

		if res := rtlRuns[i].Res; rtlRuns[i].Err == nil && res.RuntimeErr == nil && res.Finished {
			r.RTLValid = true
			if v, ok := res.Final["cosim_tb.captured"]; ok && v.IsFullyKnown() {
				r.RTL = signExtend(v.Uint(), d.opts.WidthBits)
			}
			r.Cycles = res.EndTime / 10
		}
		r.Match = r.CPUErr == nil && r.RTLValid && r.CPU == r.RTL
		out = append(out, r)
	}
	return out, nil
}

// signExtend interprets a w-bit RTL value as a signed C integer.
func signExtend(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	sign := uint64(1) << uint(w-1)
	if v&sign != 0 {
		return int64(v | ^((uint64(1) << uint(w)) - 1))
	}
	return int64(v)
}

// buildCoSimTB drives one vector through the handshake.
func buildCoSimTB(d *Design, vec []int64) string {
	var b strings.Builder
	w := d.opts.WidthBits
	b.WriteString("module cosim_tb;\n")
	b.WriteString("  reg clk, rst, ap_start;\n")
	b.WriteString("  wire ap_done;\n")
	fmt.Fprintf(&b, "  wire [%d:0] ap_return;\n", w-1)
	fmt.Fprintf(&b, "  reg [%d:0] captured;\n", w-1)
	var conns []string
	conns = append(conns, ".clk(clk)", ".rst(rst)", ".ap_start(ap_start)", ".ap_done(ap_done)", ".ap_return(ap_return)")
	for i, p := range d.Params {
		fmt.Fprintf(&b, "  reg [%d:0] arg_%s;\n", w-1, p)
		conns = append(conns, fmt.Sprintf(".arg_%s(arg_%s)", p, p))
		_ = i
	}
	fmt.Fprintf(&b, "  %s dut(%s);\n", d.TopModule, strings.Join(conns, ", "))
	b.WriteString("  always #5 clk = ~clk;\n")
	b.WriteString("  initial begin\n")
	b.WriteString("    clk = 0; rst = 1; ap_start = 0;\n")
	for i, p := range d.Params {
		fmt.Fprintf(&b, "    arg_%s = %d'd%d;\n", p, w, uint64(vec[i])&maskW(w))
	}
	b.WriteString("    @(negedge clk);\n    rst = 0; ap_start = 1;\n")
	b.WriteString("    @(negedge clk);\n    ap_start = 0;\n")
	b.WriteString("    wait (ap_done);\n")
	b.WriteString("    captured = ap_return;\n")
	b.WriteString("    $finish;\n  end\nendmodule\n")
	return b.String()
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
