package gp

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/boom"
	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/isa"
)

func fastBoom() boom.RunOptions {
	return boom.RunOptions{MaxInsts: 300_000}
}

func TestRandomGenomesCompileAndRun(t *testing.T) {
	r := newRNG(1)
	valid := 0
	for i := 0; i < 20; i++ {
		g := randomGenome(r)
		src := g.render()
		prog, err := chdl.ParseC(src)
		if err != nil {
			t.Errorf("genome %d does not parse: %v\n%s", i, err, src)
			continue
		}
		if _, err := isa.Compile(prog, "main"); err != nil {
			t.Errorf("genome %d does not compile: %v", i, err)
			continue
		}
		valid++
	}
	if valid < 18 {
		t.Errorf("only %d/20 random genomes valid", valid)
	}
}

func TestGPImproves(t *testing.T) {
	res, err := Run(context.Background(), Config{RunSpec: core.RunSpec{Seed: 3}, MaxEvals: 80, Boom: fastBoom()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Best.Score < 4.2 {
		t.Errorf("GP best %.3f W implausibly low", res.Best.Score)
	}
	if res.Trajectory[len(res.Trajectory)-1] <= res.Trajectory[0] {
		t.Errorf("GP never improved: %v ... %v", res.Trajectory[0], res.Trajectory[len(res.Trajectory)-1])
	}
}

func TestGPDeterministic(t *testing.T) {
	a, _ := Run(context.Background(), Config{RunSpec: core.RunSpec{Seed: 7}, MaxEvals: 40, Boom: fastBoom()})
	b, _ := Run(context.Background(), Config{RunSpec: core.RunSpec{Seed: 7}, MaxEvals: 40, Boom: fastBoom()})
	if a.Best.Score != b.Best.Score {
		t.Errorf("nondeterministic GP: %.4f vs %.4f", a.Best.Score, b.Best.Score)
	}
}

func TestCrossoverMutationBounds(t *testing.T) {
	r := newRNG(9)
	for i := 0; i < 200; i++ {
		a, b := randomGenome(r), randomGenome(r)
		c := mutate(r, crossover(r, a, b), 0.5)
		if c.accs < 1 || c.accs > maxAccs {
			t.Fatalf("accs out of range: %d", c.accs)
		}
		if len(c.body) == 0 || len(c.body) > maxBodyLen {
			t.Fatalf("body length out of range: %d", len(c.body))
		}
		if c.outer < minOuter || c.outer > maxOuter {
			t.Fatalf("outer out of range: %d", c.outer)
		}
		if !strings.Contains(c.render(), "int main()") {
			t.Fatal("render broken")
		}
	}
}
