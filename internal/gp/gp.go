// Package gp implements the genetic-programming baseline the paper's §V
// compares the LLM loop against ([35]): tournament selection with
// crossover and mutation over loop-body statement genomes, scored on the
// same processor power model. Unlike the LLM generator — which stays
// inside an idiomatic code space — GP mutates raw statement soup: it can
// pack arbitrarily many independent accumulator chains and op mixes into
// the loop body, which is why, given a longer budget, it keeps improving
// after the LLM loop saturates ("the GP snippet has no real-world
// equivalent").
package gp

import (
	"context"
	"fmt"
	"strings"

	"llm4eda/internal/boom"
	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/isa"
	"llm4eda/internal/simfarm"
)

// geneKind enumerates loop-body statement genes.
type geneKind int

const (
	geneALU geneKind = iota + 1
	geneMul
	geneLoad
	geneStore
	geneDiv
	geneXorShift
	geneBranch
	geneKindCount = geneBranch
)

// gene is one loop-body statement.
type gene struct {
	kind geneKind
	dst  int // accumulator index
	src  int // second accumulator index
	op   int // operator selector within the kind
	k    int64
}

// genome is a full individual.
type genome struct {
	outer  int
	accs   int // accumulator count (up to maxAccs: wider than the LLM space)
	arrLog int
	body   []gene
}

const (
	maxAccs    = 8
	maxBodyLen = 24
	minOuter   = 2000
	maxOuter   = 20000
)

// render emits the genome as a C program.
func (g genome) render() string {
	var b strings.Builder
	n := 1 << uint(g.arrLog)
	mask := n - 1
	fmt.Fprintf(&b, "int arr[%d];\n", n)
	b.WriteString("int main() {\n")
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i++) arr[i] = i * 2654435761;\n", n)
	for a := 0; a < g.accs; a++ {
		fmt.Fprintf(&b, "    int a%d = %d;\n", a, a+1)
	}
	b.WriteString("    int x = 123456789;\n")
	fmt.Fprintf(&b, "    for (int r = 0; r < %d; r++) {\n", g.outer)
	for _, gn := range g.body {
		d := gn.dst % g.accs
		s := gn.src % g.accs
		switch gn.kind {
		case geneALU:
			ops := []string{"+", "-", "^", "|", "&"}
			fmt.Fprintf(&b, "        a%d = (a%d %s (r + %d)) + a%d;\n", d, d, ops[gn.op%len(ops)], gn.k&1023, s)
		case geneMul:
			fmt.Fprintf(&b, "        a%d = a%d * %d + r;\n", d, s, 2654435761&^1|int64(gn.op)<<1|1)
		case geneLoad:
			fmt.Fprintf(&b, "        a%d += arr[(r + %d) & %d];\n", d, gn.k&8191, mask)
		case geneStore:
			fmt.Fprintf(&b, "        arr[(r + %d) & %d] = a%d;\n", gn.k&8191, mask, s)
		case geneDiv:
			fmt.Fprintf(&b, "        a%d = a%d / ((r & 7) + %d) + 977;\n", d, d, 2+gn.k&7)
		case geneXorShift:
			fmt.Fprintf(&b, "        a%d ^= a%d >> %d;\n", d, s, 1+gn.k&15)
		case geneBranch:
			switch gn.op % 3 {
			case 0:
				fmt.Fprintf(&b, "        if ((r & %d) == 0) { a%d += %d; }\n", 15, d, 3+gn.k&63)
			case 1:
				b.WriteString("        x = x * 1103515245 + 12345;\n")
				fmt.Fprintf(&b, "        if ((x >> 16) & 1) { a%d += 13; } else { a%d -= 7; }\n", d, d)
			default:
				fmt.Fprintf(&b, "        a%d += %d;\n", d, gn.k&31)
			}
		}
	}
	b.WriteString("    }\n")
	b.WriteString("    int out = x;\n")
	for a := 0; a < g.accs; a++ {
		fmt.Fprintf(&b, "    out += a%d;\n", a)
	}
	b.WriteString("    return out;\n}\n")
	return b.String()
}

// Config parameterizes a GP run.
type Config struct {
	// RunSpec carries the shared execution envelope; Seed fixes the
	// evolutionary stream and Workers bounds the initial-population batch.
	core.RunSpec
	// Population size (default 24).
	Population int
	// MaxEvals bounds fitness evaluations (the runtime stand-in; the
	// paper's GP ran 39 h vs the LLM's 24 h).
	MaxEvals int
	// TournamentK for selection (default 3).
	TournamentK int
	// MutationRate per gene (default 0.25).
	MutationRate float64
	Boom         boom.RunOptions
}

func (c Config) withDefaults() Config {
	if c.Population == 0 {
		c.Population = 24
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 300
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.25
	}
	return c
}

// Individual pairs a rendered program with its fitness.
type Individual struct {
	Source string
	Score  float64
}

// Result reports a GP run.
type Result struct {
	Best       Individual
	Trajectory []float64 // best-so-far per evaluation
	Evals      int
}

// score evaluates a genome on the processor model (the same scoring rule
// as the LLM loop).
func score(g genome, opts boom.RunOptions) float64 {
	src := g.render()
	prog, err := chdl.ParseC(src)
	if err != nil {
		return 0
	}
	compiled, err := isa.Compile(prog, "main")
	if err != nil {
		return 0
	}
	res := boom.Run(compiled, opts)
	if res.Trap != nil || !res.Halted {
		return 0
	}
	return res.PowerW
}

// Run executes the GP loop. ctx is checked between fitness evaluations:
// a cancelled context stops the evolution promptly and returns the
// best-so-far result alongside ctx.Err(). Scored individuals stream to
// the context's event sink.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sink := core.SinkOf(ctx)
	r := newRNG(cfg.Seed)
	res := &Result{}

	// Draw the whole initial population from the RNG first (scoring never
	// touches the RNG), then evaluate it as one parallel batch and fold
	// the trajectory sequentially — bit-identical to the serial loop.
	pop := make([]genome, cfg.Population)
	fit := make([]float64, cfg.Population)
	for i := range pop {
		pop[i] = randomGenome(r)
	}
	if err := simfarm.MapCtx(ctx, len(pop), cfg.Workers, func(i int) {
		fit[i] = score(pop[i], cfg.Boom)
	}); err != nil {
		return res, err // cancelled during the initial population
	}
	for i := range pop {
		res.Evals++
		if fit[i] > res.Best.Score {
			res.Best = Individual{Source: pop[i].render(), Score: fit[i]}
		}
		res.Trajectory = append(res.Trajectory, res.Best.Score)
	}
	sink.Emit(core.Event{
		Kind: core.EventPhaseEnd, Framework: "gp", Phase: "initial population",
		Total: cfg.Population, OK: true, Score: res.Best.Score,
	})

	for res.Evals < cfg.MaxEvals {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		a := tournament(r, fit, cfg.TournamentK)
		b := tournament(r, fit, cfg.TournamentK)
		child := crossover(r, pop[a], pop[b])
		child = mutate(r, child, cfg.MutationRate)
		f := score(child, cfg.Boom)
		res.Evals++
		if f > res.Best.Score {
			res.Best = Individual{Source: child.render(), Score: f}
		}
		res.Trajectory = append(res.Trajectory, res.Best.Score)
		sink.Emit(core.Event{
			Kind: core.EventCandidate, Framework: "gp", Phase: "fitness",
			Seq: res.Evals, Total: cfg.MaxEvals, Score: f, OK: f > 0,
			Detail: fmt.Sprintf("best so far %.3f W", res.Best.Score),
		})
		// Steady-state replacement: evict the worst of a small sample.
		victim := 0
		worst := fit[0]
		for k := 0; k < cfg.TournamentK; k++ {
			i := r.intn(len(pop))
			if fit[i] < worst {
				worst, victim = fit[i], i
			}
		}
		pop[victim], fit[victim] = child, f
	}
	return res, nil
}

func randomGenome(r *rngT) genome {
	g := genome{
		outer:  minOuter + r.intn(maxOuter-minOuter),
		accs:   2 + r.intn(maxAccs-1),
		arrLog: 4 + r.intn(10),
	}
	n := 3 + r.intn(10)
	for i := 0; i < n; i++ {
		g.body = append(g.body, randomGene(r))
	}
	return g
}

func randomGene(r *rngT) gene {
	return gene{
		kind: geneKind(1 + r.intn(int(geneKindCount))),
		dst:  r.intn(maxAccs),
		src:  r.intn(maxAccs),
		op:   r.intn(8),
		k:    int64(r.intn(1 << 13)),
	}
}

func tournament(r *rngT, fit []float64, k int) int {
	best := r.intn(len(fit))
	for i := 1; i < k; i++ {
		c := r.intn(len(fit))
		if fit[c] > fit[best] {
			best = c
		}
	}
	return best
}

// crossover splices the parents' loop bodies and averages scalar fields.
func crossover(r *rngT, a, b genome) genome {
	child := genome{
		outer:  pick2(r, a.outer, b.outer),
		accs:   pick2(r, a.accs, b.accs),
		arrLog: pick2(r, a.arrLog, b.arrLog),
	}
	cutA := r.intn(len(a.body) + 1)
	cutB := r.intn(len(b.body) + 1)
	child.body = append(child.body, a.body[:cutA]...)
	child.body = append(child.body, b.body[cutB:]...)
	if len(child.body) == 0 {
		child.body = append(child.body, randomGene(r))
	}
	if len(child.body) > maxBodyLen {
		child.body = child.body[:maxBodyLen]
	}
	return child.normalize()
}

func pick2(r *rngT, a, b int) int {
	if r.intn(2) == 0 {
		return a
	}
	return b
}

// mutate perturbs genes, structure and scalar fields.
func mutate(r *rngT, g genome, rate float64) genome {
	out := genome{outer: g.outer, accs: g.accs, arrLog: g.arrLog}
	out.body = append([]gene(nil), g.body...)
	for i := range out.body {
		if r.float() < rate {
			switch r.intn(4) {
			case 0:
				out.body[i] = randomGene(r)
			case 1:
				out.body[i].kind = geneKind(1 + r.intn(int(geneKindCount)))
			case 2:
				out.body[i].dst = r.intn(maxAccs)
				out.body[i].src = r.intn(maxAccs)
			default:
				out.body[i].k = int64(r.intn(1 << 13))
			}
		}
	}
	if r.float() < rate && len(out.body) < maxBodyLen {
		// Insert (possibly duplicating an existing gene: the classic GP
		// bloat that densifies the loop body).
		pos := r.intn(len(out.body) + 1)
		var gn gene
		if r.intn(2) == 0 && len(out.body) > 0 {
			gn = out.body[r.intn(len(out.body))]
		} else {
			gn = randomGene(r)
		}
		out.body = append(out.body[:pos], append([]gene{gn}, out.body[pos:]...)...)
	}
	if r.float() < rate/2 && len(out.body) > 1 {
		pos := r.intn(len(out.body))
		out.body = append(out.body[:pos], out.body[pos+1:]...)
	}
	if r.float() < rate {
		out.outer += r.intn(8001) - 4000
	}
	if r.float() < rate/2 {
		out.accs += r.intn(3) - 1
	}
	if r.float() < rate/2 {
		out.arrLog += r.intn(3) - 1
	}
	return out.normalize()
}

func (g genome) normalize() genome {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	g.outer = clamp(g.outer, minOuter, maxOuter)
	g.accs = clamp(g.accs, 1, maxAccs)
	g.arrLog = clamp(g.arrLog, 4, 13)
	return g
}

type rngT struct{ state uint64 }

func newRNG(seed uint64) *rngT {
	if seed == 0 {
		seed = 0xDEADBEEFCAFEF00D
	}
	return &rngT{state: seed}
}

func (r *rngT) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rngT) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rngT) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
