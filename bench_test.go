package llm4eda

// The benchmark harness: one testing.B target per reproduced paper
// artifact (figures 1-6 and the in-text results of §II, §IV and §V).
// Each bench runs the corresponding experiment at quick scale and logs
// the regenerated rows; `cmd/llm4eda exp all -full` produces the
// full-scale numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"llm4eda/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.Runner{Scale: experiments.ScaleQuick, Seed: 1}
	for i := 0; i < b.N; i++ {
		exp, err := r.ByID(id)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.Render())
		}
		if len(exp.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkFig1FullFlow regenerates the Fig. 1 flow trace (E1).
func BenchmarkFig1FullFlow(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkFig2HLSRepair regenerates the Fig. 2 repair results (E2).
func BenchmarkFig2HLSRepair(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkFig3DiscrepancyTesting regenerates the Fig. 3 results (E3).
func BenchmarkFig3DiscrepancyTesting(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkFig4AutoChip regenerates the AutoChip grid (E4).
func BenchmarkFig4AutoChip(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkSec4StructuredFlow regenerates the 8-design flow study (E5).
func BenchmarkSec4StructuredFlow(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkFig5SLTvsGP regenerates the §V LLM-vs-GP comparison (E6).
func BenchmarkFig5SLTvsGP(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkFig6Agent regenerates the Fig. 6 agent session (E7).
func BenchmarkFig6Agent(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkSec5Ablations regenerates the §V ablations (E8).
func BenchmarkSec5Ablations(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkSec2VRank regenerates the VRank comparison (E9).
func BenchmarkSec2VRank(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkSec2LLSM regenerates the LLSM synthesis-assist result (E10).
func BenchmarkSec2LLSM(b *testing.B) { runExperiment(b, "E10") }
