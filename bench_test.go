package llm4eda

// The benchmark harness: one testing.B target per reproduced paper
// artifact (figures 1-6 and the in-text results of §II, §IV and §V).
// Each bench runs the corresponding experiment at quick scale and logs
// the regenerated rows; `cmd/llm4eda exp all -full` produces the
// full-scale numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/boom"
	"llm4eda/internal/experiments"
	"llm4eda/internal/llm"
	"llm4eda/internal/obs"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/slt"
	"llm4eda/internal/verilog"
	"llm4eda/internal/vlint"
	"llm4eda/internal/vrank"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.Runner{Scale: experiments.ScaleQuick, Seed: 1}
	for i := 0; i < b.N; i++ {
		exp, err := r.ByID(context.Background(), id)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.Render())
		}
		if len(exp.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkFig1FullFlow regenerates the Fig. 1 flow trace (E1).
func BenchmarkFig1FullFlow(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkFig2HLSRepair regenerates the Fig. 2 repair results (E2).
func BenchmarkFig2HLSRepair(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkFig3DiscrepancyTesting regenerates the Fig. 3 results (E3).
func BenchmarkFig3DiscrepancyTesting(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkFig4AutoChip regenerates the AutoChip grid (E4).
func BenchmarkFig4AutoChip(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkSec4StructuredFlow regenerates the 8-design flow study (E5).
func BenchmarkSec4StructuredFlow(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkFig5SLTvsGP regenerates the §V LLM-vs-GP comparison (E6).
func BenchmarkFig5SLTvsGP(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkFig6Agent regenerates the Fig. 6 agent session (E7).
func BenchmarkFig6Agent(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkSec5Ablations regenerates the §V ablations (E8).
func BenchmarkSec5Ablations(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkSec2VRank regenerates the VRank comparison (E9).
func BenchmarkSec2VRank(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkSec2LLSM regenerates the LLSM synthesis-assist result (E10).
func BenchmarkSec2LLSM(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkSec6CrossLevelDebug regenerates the cross-level debugging
// evaluation (E11).
func BenchmarkSec6CrossLevelDebug(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12LintScreening regenerates the static-analysis evaluation
// (E12): mutant detection, lint-guided repair, screening savings. (Named
// so the `BenchmarkLint` micro-benchmark pattern of bench-json does not
// pull the whole experiment into the trajectory record.)
func BenchmarkE12LintScreening(b *testing.B) { runExperiment(b, "E12") }

// --- compile-once/run-many engine benchmarks ---------------------------
//
// The pair below measures the tentpole refactor on a VRank-style workload:
// k candidates per problem scored twice (oracle-free signature bench, then
// the real oracle bench), exactly the simulation profile of vrank.Rank.
// Serial is the seed path — every score re-parses and re-elaborates the
// full candidate+bench source. Batch is the simfarm path — one bench
// compile per problem, duplicate candidates deduplicated, repeated oracle
// runs memoized. See EXPERIMENTS.md for recorded numbers.

// vrankWorkload generates the candidate sets once; both benchmarks score
// the identical workload. Mirroring the E9 evaluation, each problem is
// ranked over several sampling seeds — candidate sets overlap across
// seeds exactly as repeated LLM sampling overlaps in practice.
func vrankWorkload() (problems []*benchset.Problem, cands [][][]string) {
	ids := []string{"alu8", "mux4", "enc8to3", "barrel8", "satadd8", "popcount8"}
	for _, id := range ids {
		p := benchset.ByID(id)
		perSeed := make([][]string, 0, 3)
		for s := 0; s < 3; s++ {
			model := llm.NewSimModel(llm.TierMedium, uint64(s)*31+1)
			var srcs []string
			for k := 0; k < 7; k++ {
				resp, err := model.Generate(llm.Request{
					System:      llm.SystemVerilogDesigner,
					Prompt:      llm.BuildDesignPrompt(p.Spec),
					Task:        llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
					Temperature: 0.9,
				})
				if err != nil {
					panic(err)
				}
				srcs = append(srcs, resp.Text)
			}
			perSeed = append(perSeed, srcs)
		}
		problems = append(problems, p)
		cands = append(cands, perSeed)
	}
	return problems, cands
}

// BenchmarkVRankSerial scores the workload the way the seed did: a fresh
// lex→parse→elaborate→simulate per score, oracle re-runs from scratch.
func BenchmarkVRankSerial(b *testing.B) {
	problems, cands := vrankWorkload()
	sim := verilog.SimOptions{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi, p := range problems {
			sb := vrank.StimulusBench(p.Testbench())
			for _, batch := range cands[pi] {
				var sigs []string
				for _, src := range batch {
					res, err := verilog.CompileAndRun(src+"\n"+sb, "tb", sim)
					if err != nil {
						sigs = append(sigs, "")
						continue
					}
					// Same fingerprint rule as vrank.Signatures, so both
					// benchmarks cluster — and therefore simulate —
					// identically.
					sigs = append(sigs, vrank.Fingerprint(res))
				}
				tb := p.Testbench()
				passes := func(src string) bool {
					r, err := verilog.CompileAndRun(src+"\n"+tb, "tb", sim)
					return err == nil && r.Passed()
				}
				chosen := chooseBySignature(sigs)
				if chosen >= 0 {
					passes(batch[chosen])
				}
				passes(batch[0])
				for _, src := range batch {
					if passes(src) {
						break
					}
				}
			}
		}
	}
}

// BenchmarkVRankBatch scores the same workload through the simfarm
// engine, cache-cold per iteration (Purge), so the measured win is the
// intra-workload compile/run sharing — not warm-cache residue.
func BenchmarkVRankBatch(b *testing.B) {
	problems, cands := vrankWorkload()
	sim := verilog.SimOptions{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simfarm.Default().Purge()
		for pi, p := range problems {
			tb := p.Testbench()
			for _, batch := range cands[pi] {
				sigs, _ := vrank.Signatures(context.Background(), p, batch, sim, 0)
				jobs := make([]simfarm.Job, len(batch))
				for j, src := range batch {
					jobs[j] = simfarm.Job{DUT: src, TB: tb, Top: "tb", Opts: sim}
				}
				oracle := simfarm.RunMany(jobs, 0)
				chosen := chooseBySignature(sigs)
				if chosen >= 0 {
					_ = oracle[chosen].Passed()
				}
				_ = oracle[0].Passed()
				for _, r := range oracle {
					if r.Passed() {
						break
					}
				}
			}
		}
	}
}

// --- simulator kernel micro-benchmarks ---------------------------------
//
// Per-run cost of the heap-scheduled, coroutine-free kernel, isolated
// from the front end: each bench compiles once outside the timer and
// measures cd.Run only. SeqClock is dispatch-bound (every timestep
// resumes processes through the event heap), CombSweep is
// propagation-bound (continuous-assign fanout per input change), and
// ProcessChurn is wake-ordering-bound (many event-waiting processes per
// edge). Together they cover the three regions the kernel overhaul
// rearchitected; `make bench-json` records them into the BENCH_*.json
// trajectory.

func compileKernelBench(b *testing.B, src string) *verilog.CompiledDesign {
	b.Helper()
	cd, err := verilog.Compile(src, "tb")
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	return cd
}

func runKernelBench(b *testing.B, src string) {
	cd := compileKernelBench(b, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cd.Run(verilog.SimOptions{})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if res.RuntimeErr != nil || !res.Finished {
			b.Fatalf("bad run: %+v", res)
		}
	}
}

func BenchmarkKernelSeqClock(b *testing.B) {
	runKernelBench(b, `
module counter(input clk, input rst, output reg [15:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
module tb;
  reg clk, rst;
  wire [15:0] q;
  counter dut(.clk(clk), .rst(rst), .q(q));
  always #1 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    #4 rst = 0;
    #4000;
    $check_eq(q, 16'd2000);
    $finish;
  end
endmodule`)
}

func BenchmarkKernelCombSweep(b *testing.B) {
	runKernelBench(b, `
module logicnet(input [7:0] a, b, output [7:0] x, y, z);
  wire [7:0] s = a + b;
  wire [7:0] p = a ^ b;
  wire [7:0] q = {s[3:0], p[7:4]};
  assign x = s & p;
  assign y = q | s;
  assign z = x ^ y ^ q;
endmodule
module tb;
  reg [7:0] a, b;
  wire [7:0] x, y, z;
  logicnet dut(.a(a), .b(b), .x(x), .y(y), .z(z));
  integer i;
  initial begin
    for (i = 0; i < 1000; i = i + 1) begin
      a = i; b = i * 7;
      #1;
      $check_eq(z, x ^ y ^ {a[3:0] + b[3:0], a[7:4] ^ b[7:4]});
    end
    $finish;
  end
endmodule`)
}

func BenchmarkKernelProcessChurn(b *testing.B) {
	runKernelBench(b, `
module tb;
  reg clk;
  reg [7:0] c0, c1, c2, c3, c4, c5, c6, c7;
  always #1 clk = ~clk;
  always @(posedge clk) c0 <= c0 + 1;
  always @(posedge clk) c1 <= c1 + 1;
  always @(posedge clk) c2 <= c2 + 1;
  always @(posedge clk) c3 <= c3 + 1;
  always @(negedge clk) c4 <= c4 + 1;
  always @(negedge clk) c5 <= c5 + 1;
  always @(c0 or c4) c6 = c0 ^ c4;
  always @(*) c7 = c1 ^ c5;
  initial begin
    clk = 0;
    c0 = 0; c1 = 0; c2 = 0; c3 = 0; c4 = 0; c5 = 0; c6 = 0; c7 = 0;
    #2000;
    $check_eq(c0, c1);
    $check_eq(c4, c5);
    $finish;
  end
endmodule`)
}

// BenchmarkKernelProbeOff / BenchmarkKernelProbeOn bound the cost of the
// commit-probe hook (the trace-capture layer under internal/xdebug) on a
// commit-heavy sequential workload. Off is the zero-overhead-when-off
// guard: with no probe attached the hot paths add only a nil check per
// commit and a dead line store per VM store opcode, so this point must
// track the other Kernel benchmarks. On measures the attached-probe tax
// (serial cone evaluation plus one indirect call per transition) that
// xdebug runs pay; it is diagnostic, not a regression gate.
func runKernelProbeBench(b *testing.B, probe bool) {
	cd := compileKernelBench(b, `
module tb;
  reg clk;
  reg [15:0] q0, q1;
  reg [15:0] mix;
  always #1 clk = ~clk;
  always @(posedge clk) q0 <= q0 + 1;
  always @(posedge clk) q1 <= q1 + 3;
  always @(q0 or q1) mix = q0 ^ q1;
  initial begin
    clk = 0; q0 = 0; q1 = 0; mix = 0;
    #4000;
    $check_eq(q0, 16'd2000);
    $check_eq(mix, q0 ^ q1);
    $finish;
  end
endmodule`)
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := verilog.NewSimulator(cd.Design, verilog.SimOptions{})
		if probe {
			sim.SetProbe(func(t uint64, sig verilog.SignalID, word int, line int32, v verilog.Value) {
				events++
			})
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if res.RuntimeErr != nil || !res.Finished || res.Failures != 0 {
			b.Fatalf("bad run: %+v", res)
		}
	}
	if probe && events == 0 {
		b.Fatal("probe attached but saw no transitions")
	}
}

func BenchmarkKernelProbeOff(b *testing.B) { runKernelProbeBench(b, false) }

func BenchmarkKernelProbeOn(b *testing.B) { runKernelProbeBench(b, true) }

// BenchmarkCompile measures the full front end — lex, parse, elaborate,
// and the bytecode lowering pass — on a representative DUT+testbench
// pair, so the compile-time cost the lowering stage added to
// verilog.Compile stays tracked in the BENCH_*.json trajectory alongside
// the run-time wins it buys.
func BenchmarkCompile(b *testing.B) {
	p := benchset.ByID("alu8")
	src := p.Reference + "\n" + p.Testbench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verilog.Compile(src, "tb"); err != nil {
			b.Fatalf("compile: %v", err)
		}
	}
}

// BenchmarkVMDispatch isolates the bytecode dispatch loop: a single
// initial process grinding pure register arithmetic (no delays, no
// event waits, no propagation), so ns/op tracks per-instruction VM
// overhead rather than scheduler or commit costs.
func BenchmarkVMDispatch(b *testing.B) {
	cd := compileKernelBench(b, `
module tb;
  reg [31:0] acc;
  reg [31:0] i;
  initial begin
    acc = 0;
    for (i = 0; i < 20000; i = i + 1)
      acc = ((acc ^ i) + (i * 3)) & 32'hFFFFFF;
    $check_eq(acc, 32'h3c5120);
    $finish;
  end
endmodule`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cd.Run(verilog.SimOptions{MaxSteps: 1 << 22})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if res.RuntimeErr != nil || !res.Finished || res.Failures != 0 {
			b.Fatalf("bad run: %+v", res)
		}
	}
}

// BenchmarkLintAnalysis / BenchmarkLintEndToEnd bound the cost of the
// pre-simulation screen relative to the simulation it replaces.
// Analysis measures the rule passes alone on a pre-elaborated design —
// the marginal cost when the farm's parse cache is warm. EndToEnd is
// the cache-cold path: lex, parse, elaborate, then analyze. Both run on
// the suite's richest reference (alu8); compare against
// BenchmarkKernelSeqClock for the screen-vs-simulate ratio recorded in
// the BENCH_*.json trajectory.
func BenchmarkLintAnalysis(b *testing.B) {
	p := benchset.ByID("alu8")
	file, err := verilog.Parse(p.Reference)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	d, err := verilog.Elaborate(file, p.TopModule)
	if err != nil {
		b.Fatalf("elaborate: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := vlint.Lint(file, d); len(vlint.Errors(diags)) != 0 {
			b.Fatalf("reference has error findings: %v", diags)
		}
	}
}

func BenchmarkLintEndToEnd(b *testing.B) {
	p := benchset.ByID("alu8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := vlint.LintSource(p.Reference, p.TopModule)
		if err != nil {
			b.Fatalf("lint: %v", err)
		}
		if len(vlint.Errors(diags)) != 0 {
			b.Fatalf("reference has error findings: %v", diags)
		}
	}
}

// BenchmarkSLTPoolSerial / BenchmarkSLTPoolBatch measure the §V
// population-scoring path (chdl→isa→boom, no Verilog): serial loop vs
// simfarm.Map. The batch path matches serial on one core and scales with
// GOMAXPROCS on parallel hardware.
func BenchmarkSLTPoolSerial(b *testing.B) {
	srcs := slt.SeedExamples()
	bopts := boom.RunOptions{MaxInsts: 300_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			slt.Score(src, bopts)
		}
	}
}

func BenchmarkSLTPoolBatch(b *testing.B) {
	srcs := slt.SeedExamples()
	bopts := boom.RunOptions{MaxInsts: 300_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slt.ScoreBatch(srcs, bopts, 0)
	}
}

// chooseBySignature picks the earliest member of the largest non-empty
// signature cluster (vrank's selection rule, minus the tie-break detail).
func chooseBySignature(sigs []string) int {
	counts := map[string]int{}
	for _, s := range sigs {
		if s != "" {
			counts[s]++
		}
	}
	best, bestN := -1, 0
	for i, s := range sigs {
		if s != "" && counts[s] > bestN {
			best, bestN = i, counts[s]
		}
	}
	return best
}

// BenchmarkObsOverhead prices the zero-overhead-when-off contract of
// internal/obs: the exact shape a hot path pays when telemetry is
// disabled — a SpansOf lookup on a bare context followed by the nil
// check that guards every recording call, plus a Record on a nil
// histogram (the nil-receiver fast path). Both must stay at a few ns
// with zero allocations; a regression here means instrumentation has
// started taxing runs that never asked for it.
func BenchmarkObsOverhead(b *testing.B) {
	ctx := context.Background()
	var h *obs.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sp := obs.SpansOf(ctx); sp != nil {
			sp.Record(obs.PhaseSim, 0)
		}
		h.Record(0)
	}
}
