// Package llm4eda is a from-scratch Go reproduction of "Large Language
// Models (LLMs) for Electronic Design Automation (EDA)" (SOCC 2025
// special-session paper): the full suite of LLM-for-EDA frameworks the
// paper surveys — HLS program repair (Fig. 2), HLS behavioral-discrepancy
// testing (Fig. 3), AutoChip-style feedback-driven Verilog generation
// (Fig. 4), the SLT power-maximization loop with its genetic-programming
// baseline (Fig. 5, §V), VRank self-consistency ranking, LLSM-style
// synthesis assist, the Fig. 6 end-to-end EDA agent, and the §VI
// cross-level RTL debugger (internal/xdebug: C-vs-RTL commit-trace
// alignment, first-divergence localization, diagnosis-guided repair;
// demo in examples/xdebug), and the E12 static lint engine
// (internal/vlint: line-attributed diagnostics over elaborated designs,
// pre-simulation screening in the farm, lint-guided repair in
// internal/lintrepair) — together with
// every substrate they need: a Verilog-subset event-driven simulator, a C
// frontend/interpreter, an HLS compiler with pragma-aware PPA models, a
// gate-level synthesis estimator, an RV32-like ISA with a compiler
// backend, a BOOM-class out-of-order processor power model, a
// deterministic simulated-LLM substrate and a retrieval library.
//
// Every framework is invocable through one front door, the eda package:
// describe the run as an eda.Spec (framework name, problem/kernel
// payload, shared seed/tier/workers/deadline envelope) and call
//
//	report, err := eda.Run(ctx, eda.Spec{
//		Framework: "autochip",
//		Problem:   "and4",
//		Run:       eda.RunSpec{Tier: "frontier", Seed: 2},
//		Params:    map[string]float64{"k": 2, "depth": 2},
//	}, eda.WithSink(eda.ProgressPrinter(os.Stdout, false)))
//
// Progress (phases, scored candidates, LLM calls, simulation-cache
// traffic) streams to the sink as events; cancelling ctx aborts the run
// within one simulation job. See the runnable ExampleRun in the eda
// package and examples/quickstart for the canonical demo.
//
// The same front door runs as a long-lived service: `llm4eda serve`
// exposes queued jobs over HTTP with streaming progress and a
// cross-request report cache (internal/edaserver; typed client in
// eda/client, demo in examples/servedemo):
//
//	$ llm4eda serve &
//	$ curl -s -X POST http://127.0.0.1:8372/v1/jobs \
//	      -d '{"framework":"vrank","problem":"mux4","params":{"k":3}}'
//	{"id":"j00000001","state":"queued",...}
//	$ curl -s http://127.0.0.1:8372/v1/jobs/j00000001          # status + report
//	$ curl -sN http://127.0.0.1:8372/v1/jobs/j00000001/events  # SSE progress
//	$ curl -s http://127.0.0.1:8372/v1/stats                   # queue + caches
//
// Identical specs submitted by different clients share one run: jobs are
// content-addressed, so a resubmission returns the cached report and all
// jobs share one simulation farm. The CLI's -json flag prints the same
// report wire format for one-shot runs.
//
// The service is hardened against its own failure modes: pipeline and
// worker panics are isolated per job, a -watchdog window cancels wedged
// jobs, transient failures retry with classified backoff at every layer
// (candidate loops, HTTP client, SSE reconnect-with-resume), and the
// whole stack is provable under chaos — internal/faultinject injects
// deterministic seeded fault storms through nil-guarded hooks, and
// `make chaos-test` asserts every job still terminates, caches stay
// byte-consistent and no goroutine leaks. See DESIGN.md "Resilience and
// fault injection".
//
// The stack is observable end to end: internal/obs provides the
// allocation-free telemetry core (atomic counters, log-bucketed latency
// histograms, per-job phase spans carried on the context), every job
// reports its queue_wait → lint_screen → compile → sim → store_write
// breakdown in its status and SSE end frame, and GET /v1/metrics exports
// the whole stack — job and phase latency quantiles, queue depth, farm
// cache layers, tiered-VM dispatch counters, resilience counters — in
// Prometheus text format. `llm4eda loadgen` / `make load-test` drive a
// live server with shaped traffic and record the latency history as
// committed LOAD_<date>.json files. See DESIGN.md "Observability".
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark harness in
// bench_test.go regenerates every figure and in-text result; the same
// experiments run standalone via cmd/llm4eda, whose subcommand table is
// generated from the eda registry.
package llm4eda
