# Tier-1 verification and the engine-specific gates. `make ci` is what a
# PR must pass: build, vet, gofmt cleanliness, the quick test sweep, and
# the race-checked batch engine (.github/workflows/ci.yml runs exactly
# this target).

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt-check lint-go test test-short test-race bench bench-engine bench-json bench-smoke serve-smoke chaos-test chaos-smoke load-test load-smoke ci

all: build

# Tier-1: everything compiles.
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-invariant lint (cmd/repolint): kernel hot paths stay free of fmt
# formatting, wall-clock reads and stray goroutines; probe calls stay
# nil-guarded; fault-injection hooks stay behind `!= nil` guards in every
# layer that carries one (zero overhead when chaos is off); telemetry
# recording calls in kernel files stay nil-guarded the same way.
lint-go:
	$(GO) run ./cmd/repolint ./internal/verilog ./internal/edaserver ./internal/simfarm ./eda ./internal/obs

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full test sweep (tier-1 verify is `make build test`).
test:
	$(GO) test ./...

# Quick sweep: full-scale experiment/optimization loops are gated behind
# -short and skipped here; finishes in seconds.
test-short:
	$(GO) test -short ./...

# Race-check the concurrent batch-simulation engine, every package whose
# scoring runs on worker pools, the front-door API (its event sinks
# receive from worker goroutines), the simulator kernel (its bound-
# body memo and compiled designs are shared across concurrent runs), the
# cross-level debugger (its cosimulation fan-out runs on the farm), and
# the job service (queue shards, SSE broadcasters and the report store
# all cross goroutines), and the lint layer (its memo is shared by every
# screened farm job).
test-race:
	$(GO) test -race -short ./eda ./eda/client ./internal/edaserver ./internal/faultinject ./internal/obs ./internal/verilog ./internal/simfarm ./internal/vlint ./internal/lintrepair ./internal/vrank ./internal/autochip ./internal/crosscheck ./internal/xdebug ./internal/gp ./internal/slt ./internal/hls

# Regenerate every paper artifact at quick scale.
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x .

# The compile-once/run-many engine comparison (see EXPERIMENTS.md).
bench-engine:
	$(GO) test -run 'xxx' -bench 'BenchmarkVRank' -benchtime 5x .

# Record the benchmark trajectory point: the engine comparison, the
# kernel micro-benchmarks, and the compile/VM-dispatch micro-benchmarks,
# with -benchmem so allocation behavior (the VM's pooled scratch buffers)
# is part of the history. Emitted as BENCH_<date>.json in the repo root;
# each PR that touches the engine commits the file it produces, and the
# sequence of BENCH_*.json files is the performance history.
bench-json:
	@set -e; out=$$(mktemp); \
	$(GO) test -run '^$$' -bench 'BenchmarkKernel|BenchmarkVRank|BenchmarkCompile|BenchmarkVMDispatch|BenchmarkLint|BenchmarkObs' \
	  -benchmem -benchtime 5x . > "$$out" \
	  || { cat "$$out"; rm -f "$$out"; echo "bench-json: benchmark run failed" >&2; exit 1; }; \
	awk -v date="$$(date +%F)" 'BEGIN { printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": [", date; n=0 } \
	  /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
	    if (n++) printf ","; printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", name, $$2, $$3, $$5, $$7 } \
	  END { printf "\n  ]\n}\n" }' "$$out" > BENCH_$$(date +%F).json; \
	rm -f "$$out"; cat BENCH_$$(date +%F).json

# Benchmark-regression smoke: one BenchmarkVRankBatch pass must not be
# slower than 2x the committed baseline (BENCH_BASELINE, override to
# compare against another trajectory point). The 2x headroom absorbs
# runner-speed variance while still catching engine-level slowdowns.
BENCH_BASELINE ?= BENCH_2026-08-08.json
bench-smoke:
	@set -e; \
	base=$$(awk 'match($$0, /"BenchmarkVRankBatch", "iterations": [0-9]+, "ns_per_op": [0-9]+/) { \
	  s=substr($$0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s }' $(BENCH_BASELINE)); \
	[ -n "$$base" ] || { echo "bench-smoke: no BenchmarkVRankBatch in $(BENCH_BASELINE)" >&2; exit 1; }; \
	ns=$$($(GO) test -run '^$$' -bench 'BenchmarkVRankBatch$$' -benchtime 1x . \
	  | awk '/^BenchmarkVRankBatch/ { print int($$3) }'); \
	[ -n "$$ns" ] || { echo "bench-smoke: benchmark produced no result" >&2; exit 1; }; \
	echo "bench-smoke: BenchmarkVRankBatch $$ns ns/op (baseline $$base, limit $$((2 * base)))"; \
	if [ "$$ns" -gt "$$((2 * base))" ]; then \
	  echo "bench-smoke: regression — ns/op exceeds 2x the committed baseline" >&2; exit 1; fi

# Service-layer smoke: boot `llm4eda serve`, drive one quick job through
# the typed client (submit, SSE stream, report, cached resubmission,
# stats), require the xdebug job's per-round diagnosis frames to arrive
# over SSE, then SIGTERM and require a clean drained exit. The port is
# fixed; override SERVE_SMOKE_ADDR when it clashes.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18372
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/llm4eda" ./cmd/llm4eda; \
	$(GO) build -o "$$tmp/servedemo" ./examples/servedemo; \
	"$$tmp/llm4eda" serve -addr $(SERVE_SMOKE_ADDR) > "$$tmp/serve.log" 2>&1 & \
	pid=$$!; \
	if ! "$$tmp/servedemo" -addr http://$(SERVE_SMOKE_ADDR) > "$$tmp/client.log" 2>&1; then \
	  echo "serve-smoke: client run failed; client log:" >&2; \
	  cat "$$tmp/client.log" >&2; echo "server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; kill "$$pid" 2>/dev/null || true; exit 1; fi; \
	cat "$$tmp/client.log"; \
	grep -q "xdebug diagnosis events over SSE" "$$tmp/client.log" || { \
	  echo "serve-smoke: SSE stream carried no xdebug diagnosis marker" >&2; \
	  kill "$$pid" 2>/dev/null || true; exit 1; }; \
	grep -q "lint screen events over SSE" "$$tmp/client.log" || { \
	  echo "serve-smoke: SSE stream carried no lint screen marker" >&2; \
	  kill "$$pid" 2>/dev/null || true; exit 1; }; \
	kill -TERM "$$pid"; \
	if ! wait "$$pid"; then \
	  echo "serve-smoke: server did not exit cleanly; log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; fi; \
	grep -q "drained, bye" "$$tmp/serve.log" || { \
	  echo "serve-smoke: no clean-drain marker in server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; }; \
	echo "serve-smoke: ok (submit, stream, cached resubmit, clean drain)"

# Traffic-shaped load run: boot a serve, drive the mixed workload from
# `llm4eda loadgen` (hot duplicates, cold uniques, cancellations, live
# SSE subscribers), and record submit-to-terminal latency percentiles,
# queue-wait distribution and cache-hit rates as LOAD_<date>.json in the
# repo root — commit the file; the LOAD_*.json sequence is the service
# latency history. The port is fixed; override LOAD_ADDR when it clashes.
LOAD_ADDR ?= 127.0.0.1:18373
LOAD_JOBS ?= 150
load-test:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/llm4eda" ./cmd/llm4eda; \
	"$$tmp/llm4eda" serve -addr $(LOAD_ADDR) -queue 256 > "$$tmp/serve.log" 2>&1 & \
	pid=$$!; \
	if ! "$$tmp/llm4eda" loadgen -addr http://$(LOAD_ADDR) -jobs $(LOAD_JOBS); then \
	  echo "load-test: loadgen failed; server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; kill "$$pid" 2>/dev/null || true; exit 1; fi; \
	kill -TERM "$$pid"; \
	if ! wait "$$pid"; then \
	  echo "load-test: server did not exit cleanly; log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; fi; \
	grep -q "drained, bye" "$$tmp/serve.log" || { \
	  echo "load-test: no clean-drain marker in server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; }

# The same harness at reduced scale with the smoke assertions armed
# (p99 recorded, report-cache hits observed, zero failed jobs, metrics
# scrape well-formed) and the report written to a scratch path — a
# deterministic few-second gate, part of `make ci`.
load-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/llm4eda" ./cmd/llm4eda; \
	"$$tmp/llm4eda" serve -addr $(LOAD_ADDR) > "$$tmp/serve.log" 2>&1 & \
	pid=$$!; \
	if ! "$$tmp/llm4eda" loadgen -addr http://$(LOAD_ADDR) -jobs 30 -clients 4 \
	    -smoke -out "$$tmp/load.json"; then \
	  echo "load-smoke: loadgen failed; server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; kill "$$pid" 2>/dev/null || true; exit 1; fi; \
	kill -TERM "$$pid"; \
	if ! wait "$$pid"; then \
	  echo "load-smoke: server did not exit cleanly; log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; fi; \
	grep -q "drained, bye" "$$tmp/serve.log" || { \
	  echo "load-smoke: no clean-drain marker in server log:" >&2; \
	  cat "$$tmp/serve.log" >&2; exit 1; }; \
	echo "load-smoke: ok (mixed traffic, smoke assertions, clean drain)"

# Chaos acceptance: mixed realistic traffic against the seeded fault
# plan (worker/pipeline panics, transient errors, wedged stages, slow
# simulations, SSE disconnects, report-store write failures). Asserts
# every job reaches a terminal state, the resilience counters account
# for the injected faults, cached reports stay byte-consistent, and
# shutdown restores the goroutine baseline.
chaos-test:
	$(GO) test -race -run TestChaosSurvival -v -timeout 300s ./internal/edaserver

# The same storm at reduced scale with a fixed seed — a deterministic
# few-second gate, part of `make ci`.
chaos-smoke:
	$(GO) test -run TestChaosSurvival -short -timeout 120s ./internal/edaserver

ci: build vet fmt-check lint-go test-short test-race chaos-smoke serve-smoke load-smoke
