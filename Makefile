# Tier-1 verification and the engine-specific gates. `make ci` is what a
# PR must pass: build, vet, the quick test sweep, and the race-checked
# batch engine.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-engine ci

all: build

# Tier-1: everything compiles.
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test sweep (tier-1 verify is `make build test`).
test:
	$(GO) test ./...

# Quick sweep: full-scale experiment/optimization loops are gated behind
# -short and skipped here; finishes in seconds.
test-short:
	$(GO) test -short ./...

# Race-check the concurrent batch-simulation engine and every package
# whose scoring now runs on worker pools.
test-race:
	$(GO) test -race -short ./internal/simfarm ./internal/vrank ./internal/autochip ./internal/crosscheck ./internal/gp ./internal/slt ./internal/hls

# Regenerate every paper artifact at quick scale.
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x .

# The compile-once/run-many engine comparison (see EXPERIMENTS.md).
bench-engine:
	$(GO) test -run 'xxx' -bench 'BenchmarkVRank' -benchtime 5x .

ci: build vet test-short test-race
