# Tier-1 verification and the engine-specific gates. `make ci` is what a
# PR must pass: build, vet, gofmt cleanliness, the quick test sweep, and
# the race-checked batch engine (.github/workflows/ci.yml runs exactly
# this target).

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt-check test test-short test-race bench bench-engine bench-json ci

all: build

# Tier-1: everything compiles.
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full test sweep (tier-1 verify is `make build test`).
test:
	$(GO) test ./...

# Quick sweep: full-scale experiment/optimization loops are gated behind
# -short and skipped here; finishes in seconds.
test-short:
	$(GO) test -short ./...

# Race-check the concurrent batch-simulation engine, every package whose
# scoring runs on worker pools, the front-door API (its event sinks
# receive from worker goroutines), and the simulator kernel (its bound-
# body memo and compiled designs are shared across concurrent runs).
test-race:
	$(GO) test -race -short ./eda ./internal/verilog ./internal/simfarm ./internal/vrank ./internal/autochip ./internal/crosscheck ./internal/gp ./internal/slt ./internal/hls

# Regenerate every paper artifact at quick scale.
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x .

# The compile-once/run-many engine comparison (see EXPERIMENTS.md).
bench-engine:
	$(GO) test -run 'xxx' -bench 'BenchmarkVRank' -benchtime 5x .

# Record the benchmark trajectory point: the engine comparison plus the
# kernel micro-benchmarks, emitted as BENCH_<date>.json in the repo root.
# Each PR that touches the engine commits the file it produces; the
# sequence of BENCH_*.json files is the performance history.
bench-json:
	@set -e; out=$$(mktemp); \
	$(GO) test -run '^$$' -bench 'BenchmarkKernel|BenchmarkVRank' -benchtime 5x . > "$$out" \
	  || { cat "$$out"; rm -f "$$out"; echo "bench-json: benchmark run failed" >&2; exit 1; }; \
	awk -v date="$$(date +%F)" 'BEGIN { printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": [", date; n=0 } \
	  /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
	    if (n++) printf ","; printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $$2, $$3 } \
	  END { printf "\n  ]\n}\n" }' "$$out" > BENCH_$$(date +%F).json; \
	rm -f "$$out"; cat BENCH_$$(date +%F).json

ci: build vet fmt-check test-short test-race
