# Tier-1 verification and the engine-specific gates. `make ci` is what a
# PR must pass: build, vet, gofmt cleanliness, the quick test sweep, and
# the race-checked batch engine (.github/workflows/ci.yml runs exactly
# this target).

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt-check test test-short test-race bench bench-engine ci

all: build

# Tier-1: everything compiles.
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full test sweep (tier-1 verify is `make build test`).
test:
	$(GO) test ./...

# Quick sweep: full-scale experiment/optimization loops are gated behind
# -short and skipped here; finishes in seconds.
test-short:
	$(GO) test -short ./...

# Race-check the concurrent batch-simulation engine, every package whose
# scoring runs on worker pools, and the front-door API (its event sinks
# receive from worker goroutines).
test-race:
	$(GO) test -race -short ./eda ./internal/simfarm ./internal/vrank ./internal/autochip ./internal/crosscheck ./internal/gp ./internal/slt ./internal/hls

# Regenerate every paper artifact at quick scale.
bench:
	$(GO) test -run 'xxx' -bench . -benchtime 1x .

# The compile-once/run-many engine comparison (see EXPERIMENTS.md).
bench-engine:
	$(GO) test -run 'xxx' -bench 'BenchmarkVRank' -benchtime 5x .

ci: build vet fmt-check test-short test-race
