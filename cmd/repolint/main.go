// Command repolint enforces repository invariants the Go compiler
// cannot: performance and soundness contracts of the simulator kernel
// that are easy to break in review and expensive to rediscover in a
// profile. Stdlib-only (go/ast, go/parser), wired into `make ci` as
// lint-go.
//
// Rules (scoped to internal/verilog):
//
//   - no-fmt-hot: vm.go, eval.go and value.go are the VM dispatch,
//     expression evaluation and value kernel — reflection-based fmt
//     formatting there turns into per-event allocations. fmt.Errorf is
//     allowed (error construction happens once, on failure exits), as
//     are the named cold paths: the interpreter system-call/statement
//     fallbacks and Format*/String/render*/dump*/disasm* helpers.
//   - no-time: the kernel is deterministic by construction; wall-clock
//     reads (any use of the time package) in kernel files would leak
//     nondeterminism into simulation results or their caching.
//   - no-goroutine: kernel files must not spawn goroutines — scheduling
//     belongs to the caller (simfarm) — except the documented
//     parallelSweep combinational-cone fan-out.
//   - probe-guard: every call of the commit-probe field must sit under
//     an `... .probe != nil` guard, keeping the zero-overhead-when-off
//     contract (and nil safety) visible at each call site.
//   - obs-guard: telemetry recording calls (methods named Record or
//     Observe) in kernel files must sit under a dominating `!= nil`
//     guard. The obs types are nil-receiver-safe, but on the per-event
//     kernel path even the call overhead must be guarded away when
//     telemetry is off.
//
// Rules (every linted directory):
//
//   - fault-guard: every call of a fault-injection hook (a method named
//     Fire) must sit under an enclosing `... != nil` guard, so a
//     production build with no injector configured pays a nil check and
//     nothing else. The call's own `if err := x.Fire(...); err != nil`
//     error check does not count — the guard must dominate the call.
//
// Usage: repolint [pkgdir ...]   (default ./internal/verilog)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// hotFiles are the per-event kernel: no fmt formatting outside cold
// helpers.
var hotFiles = map[string]bool{"vm.go": true, "eval.go": true, "value.go": true}

// kernelFiles additionally carry the no-time / no-goroutine / probe
// rules (the full simulation engine, excluding front-end and analysis).
var kernelFiles = map[string]bool{
	"vm.go": true, "eval.go": true, "value.go": true, "sim.go": true,
	"interp.go": true, "super.go": true, "bytecode.go": true, "compile.go": true,
}

// coldFunc reports whether a function in a hot file is an allowed cold
// path for fmt formatting.
func coldFunc(name string) bool {
	switch name {
	case "execSysCall", "execFallback", "renderDisplay":
		return true
	}
	for _, p := range []string{"Format", "String", "render", "dump", "disasm"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

type finding struct {
	pos token.Position
	msg string
}

// lintFile applies every applicable rule to one parsed file.
func lintFile(fset *token.FileSet, f *ast.File, base string) []finding {
	var out []finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, finding{fset.Position(n.Pos()), fmt.Sprintf(format, args...)})
	}
	// The verilog-kernel rules are filename-scoped; the fault-guard rule
	// applies to every linted file, so no early return on a cold file.
	hot, kernel := hotFiles[base], kernelFiles[base]

	// stack tracks enclosing nodes so each check can see its function
	// and its guards; ast.Inspect signals pop with nil.
	var stack []ast.Node
	enclosingFunc := func() string {
		for i := len(stack) - 1; i >= 0; i-- {
			if fd, ok := stack[i].(*ast.FuncDecl); ok {
				return fd.Name.Name
			}
		}
		return ""
	}
	probeGuarded := func() bool {
		for i := len(stack) - 1; i >= 0; i-- {
			ifst, ok := stack[i].(*ast.IfStmt)
			if !ok {
				continue
			}
			guarded := false
			ast.Inspect(ifst.Cond, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{be.X, be.Y} {
					if sel, ok := side.(*ast.SelectorExpr); ok && sel.Sel.Name == "probe" {
						guarded = true
					}
				}
				return true
			})
			if guarded {
				return true
			}
		}
		return false
	}
	// nilGuarded reports whether call sits inside the BODY of an IfStmt
	// whose condition contains a `!= nil` comparison. An IfStmt whose
	// init/cond region contains the call itself is skipped: the hook's
	// own `if err := x.Fire(...); err != nil` error check must not
	// satisfy the guard that is supposed to dominate the call.
	nilGuarded := func(call ast.Node) bool {
		for i := len(stack) - 1; i >= 0; i-- {
			ifst, ok := stack[i].(*ast.IfStmt)
			if !ok {
				continue
			}
			if call.Pos() < ifst.Body.Pos() {
				continue // the call is in this if's init or condition
			}
			guarded := false
			ast.Inspect(ifst.Cond, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{be.X, be.Y} {
					if id, ok := side.(*ast.Ident); ok && id.Name == "nil" {
						guarded = true
					}
				}
				return true
			})
			if guarded {
				return true
			}
		}
		return false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch node := n.(type) {
		case *ast.GoStmt:
			if kernel && enclosingFunc() != "parallelSweep" {
				report(node, "goroutine spawned in kernel file %s (only parallelSweep may fan out)", base)
			}
		case *ast.SelectorExpr:
			pkg, ok := node.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pkg.Name {
			case "time":
				if kernel {
					report(node, "time.%s in kernel file %s: the simulator must not read wall-clock state", node.Sel.Name, base)
				}
			case "fmt":
				if hot && node.Sel.Name != "Errorf" && !coldFunc(enclosingFunc()) {
					report(node, "fmt.%s on kernel hot path %s (func %s): formatting allocates per event",
						node.Sel.Name, base, enclosingFunc())
				}
			}
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "probe":
				if kernel && !probeGuarded() {
					report(node, "probe called without an enclosing `.probe != nil` guard in %s", base)
				}
			case "Fire":
				if !nilGuarded(node) {
					report(node, "fault hook Fire called without a dominating `!= nil` guard in %s: injection must be zero-overhead when off", base)
				}
			case "Record", "Observe":
				if kernel && !nilGuarded(node) {
					report(node, "obs recording call %s without a dominating `!= nil` guard in kernel file %s: telemetry must be zero-overhead when off", sel.Sel.Name, base)
				}
			}
		}
		return true
	})
	return out
}

// lintDir lints every non-test Go file of one package directory.
func lintDir(dir string) ([]finding, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	var out []finding
	for _, path := range paths {
		base := filepath.Base(path)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, lintFile(fset, f, base)...)
	}
	return out, nil
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/verilog"}
	}
	var findings []finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Printf("repolint: %s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
