package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, base, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, base, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f, base)
}

// The real kernel must pass — this is the same gate `make ci` runs.
func TestKernelIsClean(t *testing.T) {
	findings, err := lintDir("../../internal/verilog")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s", f.pos, f.msg)
	}
}

// Every rule must fire on synthetic violations — a linter that cannot
// find anything is indistinguishable from one that checks nothing.
func TestRulesFire(t *testing.T) {
	cases := []struct {
		name, base, src, want string
	}{
		{"fmt-hot", "vm.go",
			"package v\nimport \"fmt\"\nfunc step() { fmt.Sprintf(\"%d\", 1) }\n",
			"fmt.Sprintf on kernel hot path"},
		{"time", "sim.go",
			"package v\nimport \"time\"\nfunc tick() { _ = time.Now() }\n",
			"time.Now in kernel file"},
		{"goroutine", "eval.go",
			"package v\nfunc eval() { go func() {}() }\n",
			"goroutine spawned in kernel file"},
		{"probe-unguarded", "sim.go",
			"package v\ntype S struct{ probe func(int) }\nfunc (s *S) commit() { s.probe(1) }\n",
			"without an enclosing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := lintSrc(t, c.base, c.src)
			if len(findings) != 1 || !strings.Contains(findings[0].msg, c.want) {
				t.Fatalf("findings = %+v, want one containing %q", findings, c.want)
			}
		})
	}
}

// The allowed shapes must stay allowed: fmt.Errorf and cold helpers on
// hot files, parallelSweep's fan-out, and guarded probe calls.
func TestAllowlists(t *testing.T) {
	cases := []struct{ name, base, src string }{
		{"errorf", "vm.go",
			"package v\nimport \"fmt\"\nfunc step() error { return fmt.Errorf(\"x\") }\n"},
		{"cold-func", "value.go",
			"package v\nimport \"fmt\"\nfunc FormatWords() string { return fmt.Sprintf(\"x\") }\n"},
		{"fallback", "eval.go",
			"package v\nimport \"fmt\"\nfunc execSysCall() { fmt.Fprintf(nil, \"x\") }\n"},
		{"sweep", "sim.go",
			"package v\nfunc (s *S) parallelSweep() { go func() {}() }\ntype S struct{}\n"},
		{"guarded-probe", "sim.go",
			"package v\ntype S struct{ probe func(int) }\nfunc (s *S) commit() { if s.probe != nil { s.probe(1) } }\n"},
		{"non-kernel", "parser.go",
			"package v\nimport \"time\"\nfunc parse() { _ = time.Now(); go func() {}() }\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if findings := lintSrc(t, c.base, c.src); len(findings) != 0 {
				t.Fatalf("unexpected findings: %+v", findings)
			}
		})
	}
}

// TestFaultGuardRule pins the repo-wide Fire-guard contract: the fault
// hook call must sit under a dominating `!= nil` guard, and the hook's
// own error check does not count as one. Unlike the kernel rules this
// applies to every linted file.
func TestFaultGuardRule(t *testing.T) {
	cases := []struct {
		name, src string
		want      int
	}{
		{"guarded fire is clean",
			"package p\nfunc f() {\n\tif in != nil {\n\t\tin.Fire(ctx, \"pt\")\n\t}\n}\n", 0},
		{"guarded fire with inner error check is clean",
			"package p\nfunc f() error {\n\tif s.faults != nil {\n\t\tif err := s.faults.Fire(ctx, \"pt\"); err != nil {\n\t\t\treturn err\n\t\t}\n\t}\n\treturn nil\n}\n", 0},
		{"bare fire is flagged",
			"package p\nfunc f() {\n\tin.Fire(ctx, \"pt\")\n}\n", 1},
		{"own error check alone does not satisfy the guard",
			"package p\nfunc f() error {\n\tif err := in.Fire(ctx, \"pt\"); err != nil {\n\t\treturn err\n\t}\n\treturn nil\n}\n", 1},
		{"sibling nil guard does not leak in",
			"package p\nfunc f() {\n\tif other != nil {\n\t\tuse(other)\n\t}\n\tin.Fire(ctx, \"pt\")\n}\n", 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// handlers.go: a service file, outside the kernel scope.
			findings := lintSrc(t, "handlers.go", c.src)
			if len(findings) != c.want {
				t.Fatalf("findings = %+v, want %d", findings, c.want)
			}
			for _, f := range findings {
				if !strings.Contains(f.msg, "Fire") {
					t.Errorf("unexpected finding: %s", f.msg)
				}
			}
		})
	}
}

// TestObsGuardRule pins the kernel telemetry contract: obs recording
// calls (Record/Observe) in kernel files must sit under a dominating
// `!= nil` guard — the nil-safe receiver is not enough on the per-event
// path. Outside kernel files the rule is silent: service-layer spans
// are always allocated and guards there would be noise.
func TestObsGuardRule(t *testing.T) {
	cases := []struct {
		name, base, src string
		want            int
	}{
		{"guarded record is clean", "vm.go",
			"package v\nfunc step() {\n\tif sp != nil {\n\t\tsp.Record(phase, d)\n\t}\n}\n", 0},
		{"bare record in kernel file is flagged", "eval.go",
			"package v\nfunc eval() {\n\tsp.Record(phase, d)\n}\n", 1},
		{"bare observe in kernel file is flagged", "sim.go",
			"package v\nfunc tick() {\n\th.Observe(v)\n}\n", 1},
		{"bare record outside kernel files is clean", "handlers.go",
			"package p\nfunc finish() {\n\tjb.spans.Record(phase, d)\n}\n", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := lintSrc(t, c.base, c.src)
			if len(findings) != c.want {
				t.Fatalf("findings = %+v, want %d", findings, c.want)
			}
			for _, f := range findings {
				if !strings.Contains(f.msg, "obs recording call") {
					t.Errorf("unexpected finding: %s", f.msg)
				}
			}
		})
	}
}

// TestServiceDirsAreClean runs the same multi-directory gate `make ci`
// runs over the fault-hook call sites.
func TestServiceDirsAreClean(t *testing.T) {
	for _, dir := range []string{"../../internal/edaserver", "../../internal/simfarm", "../../eda"} {
		findings, err := lintDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", f.pos, f.msg)
		}
	}
}
