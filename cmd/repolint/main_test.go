package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, base, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, base, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f, base)
}

// The real kernel must pass — this is the same gate `make ci` runs.
func TestKernelIsClean(t *testing.T) {
	findings, err := lintDir("../../internal/verilog")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s", f.pos, f.msg)
	}
}

// Every rule must fire on synthetic violations — a linter that cannot
// find anything is indistinguishable from one that checks nothing.
func TestRulesFire(t *testing.T) {
	cases := []struct {
		name, base, src, want string
	}{
		{"fmt-hot", "vm.go",
			"package v\nimport \"fmt\"\nfunc step() { fmt.Sprintf(\"%d\", 1) }\n",
			"fmt.Sprintf on kernel hot path"},
		{"time", "sim.go",
			"package v\nimport \"time\"\nfunc tick() { _ = time.Now() }\n",
			"time.Now in kernel file"},
		{"goroutine", "eval.go",
			"package v\nfunc eval() { go func() {}() }\n",
			"goroutine spawned in kernel file"},
		{"probe-unguarded", "sim.go",
			"package v\ntype S struct{ probe func(int) }\nfunc (s *S) commit() { s.probe(1) }\n",
			"without an enclosing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := lintSrc(t, c.base, c.src)
			if len(findings) != 1 || !strings.Contains(findings[0].msg, c.want) {
				t.Fatalf("findings = %+v, want one containing %q", findings, c.want)
			}
		})
	}
}

// The allowed shapes must stay allowed: fmt.Errorf and cold helpers on
// hot files, parallelSweep's fan-out, and guarded probe calls.
func TestAllowlists(t *testing.T) {
	cases := []struct{ name, base, src string }{
		{"errorf", "vm.go",
			"package v\nimport \"fmt\"\nfunc step() error { return fmt.Errorf(\"x\") }\n"},
		{"cold-func", "value.go",
			"package v\nimport \"fmt\"\nfunc FormatWords() string { return fmt.Sprintf(\"x\") }\n"},
		{"fallback", "eval.go",
			"package v\nimport \"fmt\"\nfunc execSysCall() { fmt.Fprintf(nil, \"x\") }\n"},
		{"sweep", "sim.go",
			"package v\nfunc (s *S) parallelSweep() { go func() {}() }\ntype S struct{}\n"},
		{"guarded-probe", "sim.go",
			"package v\ntype S struct{ probe func(int) }\nfunc (s *S) commit() { if s.probe != nil { s.probe(1) } }\n"},
		{"non-kernel", "parser.go",
			"package v\nimport \"time\"\nfunc parse() { _ = time.Now(); go func() {}() }\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if findings := lintSrc(t, c.base, c.src); len(findings) != 0 {
				t.Fatalf("unexpected findings: %+v", findings)
			}
		})
	}
}
