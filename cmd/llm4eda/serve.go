package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"llm4eda/internal/edaserver"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/simfarm"
)

// cmdServe runs the EDA job service: the eda registry behind a queued,
// streamable HTTP API (see internal/edaserver). The process serves until
// SIGINT/SIGTERM, then drains: intake stops, in-flight jobs finish (up to
// -drain), and the server exits 0 on a clean drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	workers := fs.Int("workers", 0, "job-queue worker shards (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued-job bound before 429 backpressure (0 = default 64)")
	reports := fs.Int("reports", 0, "content-addressed report-store entries (0 = default 256)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	watchdog := fs.Duration("watchdog", 0, "per-job event-staleness window; a running job silent this long is cancelled as wedged (0 = off)")
	faults := fs.String("faults", "", "chaos fault plan, inline JSON or @file (testing only; see internal/faultinject)")
	logLevel := fs.String("log-level", "info", "structured-log threshold: debug, info, warn or error")
	debugAddr := fs.String("debug-addr", "", "optional second listener serving net/http/pprof (kept off the public API address)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("serve: -log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	var injector *faultinject.Injector
	if *faults != "" {
		raw := []byte(*faults)
		if name, ok := strings.CutPrefix(*faults, "@"); ok {
			b, err := os.ReadFile(name)
			if err != nil {
				return fmt.Errorf("serve: -faults: %w", err)
			}
			raw = b
		}
		plan, err := faultinject.ParsePlan(raw)
		if err != nil {
			return fmt.Errorf("serve: -faults: %w", err)
		}
		injector = faultinject.New(plan)
		fmt.Printf("llm4eda serve: WARNING fault injection armed (%d faults, seed %d) — this server WILL misbehave on purpose\n",
			len(plan.Faults), plan.Seed)
	}

	// Listen before spawning the worker pool: a bad address must not
	// leak a started pool.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := edaserver.New(edaserver.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		ReportCap:  *reports,
		Watchdog:   *watchdog,
		Faults:     injector,
		Log:        logger,
	})
	if injector != nil {
		// eda.Run executes on the process-default farm, so the farm-layer
		// fault point arms there too.
		simfarm.Default().SetFaults(injector)
	}
	// The pprof listener is a separate mux on a separate port on
	// purpose: profiling endpoints never ride the public API address.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: -debug-addr: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", httppprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		dsrv := &http.Server{Handler: dmux}
		defer dsrv.Close()
		go func() { _ = dsrv.Serve(dln) }()
		fmt.Printf("llm4eda serve: pprof on http://%s/debug/pprof/\n", dln.Addr())
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Printf("llm4eda serve: listening on http://%s (POST /v1/jobs, GET /v1/stats, GET /v1/metrics)\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigCh:
		fmt.Printf("llm4eda serve: %v, draining (budget %v)\n", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue first: intake flips to 503, in-flight jobs
	// finish, and every job's SSE stream closes with its terminal event —
	// which is what lets the HTTP shutdown afterwards release the
	// long-lived event connections promptly. A drain-budget overrun
	// cancels in-flight jobs but still waits for the workers to unwind,
	// never leaving work half-running.
	forced := false
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: drain: %w", err)
	} else if err != nil {
		forced = true
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: %w", err)
	}
	// The two exit lines are distinct on purpose: `make serve-smoke`
	// greps for the clean-drain marker, so a forced cancel can never
	// masquerade as a clean drain in CI.
	if forced {
		fmt.Println("llm4eda serve: drain budget exceeded, in-flight jobs cancelled, bye")
	} else {
		fmt.Println("llm4eda serve: drained, bye")
	}
	return nil
}
