package main

import (
	"os"
	"strings"
	"testing"

	"llm4eda/eda"
)

// TestRegistryDocsDrift enumerates the framework registry and fails when
// any registered framework is missing from the CLI dispatch table, the
// DESIGN.md inventory, or the EXPERIMENTS.md scenario coverage — the
// drift that silently orphans a subsystem from its documentation. Adding
// a framework means adding it everywhere this test looks.
func TestRegistryDocsDrift(t *testing.T) {
	frameworks := eda.Frameworks()
	if len(frameworks) == 0 {
		t.Fatal("empty framework registry")
	}

	cmds := map[string]bool{}
	for _, c := range commandTable() {
		cmds[c.name] = true
	}

	docs := map[string]string{}
	for _, path := range []string{"../../DESIGN.md", "../../EXPERIMENTS.md"} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		docs[path] = strings.ToLower(string(raw))
	}

	for _, fw := range frameworks {
		if !cmds[fw] {
			t.Errorf("framework %q has no CLI subcommand (commandTable)", fw)
		}
		for path, body := range docs {
			if !strings.Contains(body, strings.ToLower(fw)) {
				t.Errorf("framework %q not mentioned in %s", fw, path)
			}
		}
	}
}
