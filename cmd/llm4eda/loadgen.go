package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
)

// cmdLoadgen drives a live `llm4eda serve` with traffic shaped like the
// production mix the ROADMAP scales toward: hot duplicate specs (report-
// cache traffic), cold uniques (real compute), early cancellations and
// live SSE subscribers, from several concurrent clients. It measures
// what the microbenchmarks cannot — submit-to-terminal latency and
// queue-wait distributions under contention, and the cache-hit economics
// of mixed traffic — and writes them to LOAD_<date>.json, the service-
// level companion of the BENCH_*.json trajectory (`make load-test`).
//
// The mix is index-driven from a fixed seed, so two runs against equal
// servers submit identical traffic; -smoke adds the CI assertions
// (`make load-smoke`): a recorded p99, report-cache hits, no failures.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8372", "server base URL")
	jobs := fs.Int("jobs", 120, "total jobs to submit")
	clients := fs.Int("clients", 8, "concurrent submitting clients")
	hotEvery := fs.Int("hot", 3, "every Nth job resubmits a hot spec from a fixed set (0 = no hot traffic)")
	cancelEvery := fs.Int("cancel", 9, "every Nth job is cancelled right after submission (0 = never)")
	sseEvery := fs.Int("sse", 5, "every Nth job gets a live SSE subscriber (0 = none)")
	seed := fs.Uint64("seed", 1, "base seed for cold-unique specs (the traffic shape itself is index-driven)")
	timeout := fs.Duration("timeout", 5*time.Minute, "whole-run deadline")
	out := fs.String("out", "", "output JSON path (default LOAD_<date>.json)")
	smoke := fs.Bool("smoke", false, "assert smoke invariants: p99 recorded, cache hits > 0, zero failed jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("loadgen takes no positional arguments")
	}
	if *jobs <= 0 || *clients <= 0 {
		return fmt.Errorf("loadgen: -jobs and -clients must be positive")
	}
	path := *out
	if path == "" {
		path = "LOAD_" + time.Now().Format("2006-01-02") + ".json"
	}
	rep, err := runLoad(*addr, *jobs, *clients, *hotEvery, *cancelEvery, *sseEvery, *seed, *timeout)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	fmt.Printf("loadgen: %d jobs via %d clients in %.2fs — done=%d cached=%d cancelled=%d failed=%d; "+
		"latency p50=%.1fms p99=%.1fms; report-cache hits=%d (%.0f%%)\n",
		rep.Jobs, rep.Clients, rep.DurationS, rep.Outcomes.Done, rep.Outcomes.Cached,
		rep.Outcomes.Cancelled, rep.Outcomes.Failed, rep.LatencyMS.P50, rep.LatencyMS.P99,
		rep.ReportCache.Hits, 100*rep.ReportCache.HitRate)
	fmt.Printf("loadgen: wrote %s\n", path)
	if *smoke {
		if err := rep.smokeCheck(); err != nil {
			return fmt.Errorf("loadgen: smoke: %w", err)
		}
		fmt.Println("loadgen: smoke ok (p99 recorded, cache hits > 0, zero failed jobs)")
	}
	return nil
}

// loadReport is the committed LOAD_<date>.json shape.
type loadReport struct {
	Date      string  `json:"date"`
	Addr      string  `json:"addr"`
	Jobs      int     `json:"jobs"`
	Clients   int     `json:"clients"`
	Seed      uint64  `json:"seed"`
	Mix       loadMix `json:"mix"`
	DurationS float64 `json:"duration_s"`
	// ThroughputJPS is terminal jobs per wall-clock second.
	ThroughputJPS float64 `json:"throughput_jobs_per_s"`

	Outcomes struct {
		// Done counts jobs finishing state=done, Cached the subset the
		// report store answered (submit- or pop-time dedup).
		Done      int `json:"done"`
		Cached    int `json:"cached"`
		Cancelled int `json:"cancelled"`
		Failed    int `json:"failed"`
		// SubmitRejected counts 429/503 rejections that exhausted the
		// client's retry budget; SubmitErrors any other submit failure.
		SubmitRejected int `json:"submit_rejected"`
		SubmitErrors   int `json:"submit_errors"`
		StreamErrors   int `json:"stream_errors"`
	} `json:"outcomes"`

	// LatencyMS summarizes client-observed submit-to-terminal latency of
	// done jobs (exact percentiles over the recorded samples, not
	// histogram estimates). QueueWaitMS summarizes the server-reported
	// per-job queue wait of the same jobs.
	LatencyMS   loadQuantiles `json:"latency_ms"`
	QueueWaitMS loadQuantiles `json:"queue_wait_ms"`
	// PhaseMeanMS is the mean per-job duration of each canonical phase
	// over done jobs, from the jobs' span breakdowns.
	PhaseMeanMS map[string]float64 `json:"phase_mean_ms"`

	// ReportCache and FarmResults are the run's cache-traffic deltas
	// (after minus before, so a shared server's history is excluded).
	ReportCache struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"report_cache"`
	FarmResults struct {
		Hits     uint64  `json:"hits"`
		Misses   uint64  `json:"misses"`
		Computes uint64  `json:"computes"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"farm_results"`

	EventsStreamed int  `json:"events_streamed"`
	MetricsScrape  bool `json:"metrics_scrape_ok"`
}

type loadMix struct {
	HotEvery    int `json:"hot_every"`
	CancelEvery int `json:"cancel_every"`
	SSEEvery    int `json:"sse_every"`
}

type loadQuantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func (r *loadReport) smokeCheck() error {
	var errs []string
	if r.Outcomes.Done == 0 || r.LatencyMS.P99 <= 0 {
		errs = append(errs, fmt.Sprintf("no p99 latency recorded (done=%d, p99=%.3fms)",
			r.Outcomes.Done, r.LatencyMS.P99))
	}
	if r.ReportCache.Hits == 0 {
		errs = append(errs, "report-cache hit counter stayed zero under hot duplicate traffic")
	}
	if r.Outcomes.Failed > 0 {
		errs = append(errs, fmt.Sprintf("%d jobs failed", r.Outcomes.Failed))
	}
	if r.Outcomes.SubmitErrors > 0 {
		errs = append(errs, fmt.Sprintf("%d submissions errored", r.Outcomes.SubmitErrors))
	}
	if !r.MetricsScrape {
		errs = append(errs, "/v1/metrics scrape failed or lacked the job-duration family")
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return nil
}

// loadSpec shapes job i's spec: every hotEvery-th job draws from a
// three-spec hot set (alternating by index so each hot spec repeats
// many times), everything else is a cold unique over the three quick
// suite problems. All vrank k=2: quick enough to push real concurrency
// through a laptop-sized server, real enough to exercise lint screen,
// compile, multi-candidate sim and report assembly.
func loadSpec(i, hotEvery int, seed uint64) eda.Spec {
	problems := []string{"mux4", "adder4", "counter8"}
	if hotEvery > 0 && i%hotEvery == 0 {
		h := (i / hotEvery) % len(problems)
		return eda.Spec{Framework: "vrank", Problem: problems[h],
			Run: eda.RunSpec{Seed: seed}, Params: map[string]float64{"k": 2}}
	}
	return eda.Spec{Framework: "vrank", Problem: problems[i%len(problems)],
		Run: eda.RunSpec{Seed: seed*1000 + uint64(i)}, Params: map[string]float64{"k": 2}}
}

func runLoad(addr string, jobs, nClients, hotEvery, cancelEvery, sseEvery int, seed uint64, timeout time.Duration) (*loadReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	pool := make([]*client.Client, nClients)
	for i := range pool {
		pool[i] = client.New(addr, client.WithPollInterval(20*time.Millisecond))
	}
	if err := loadWaitReady(ctx, pool[0]); err != nil {
		return nil, fmt.Errorf("server at %s not ready: %w", addr, err)
	}
	before, err := pool[0].Stats(ctx)
	if err != nil {
		return nil, err
	}

	rep := &loadReport{
		Date: time.Now().Format("2006-01-02"), Addr: addr,
		Jobs: jobs, Clients: nClients, Seed: seed,
		Mix: loadMix{HotEvery: hotEvery, CancelEvery: cancelEvery, SSEEvery: sseEvery},
	}
	var mu sync.Mutex
	var latencies, waits []float64
	phaseSum := map[string]float64{}
	var events atomic.Int64
	var wg, sseWG sync.WaitGroup
	start := time.Now()
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := pool[w]
			for i := w; i < jobs; i += nClients {
				spec := loadSpec(i, hotEvery, seed)
				t0 := time.Now()
				job, err := cl.Submit(ctx, spec)
				if err != nil {
					mu.Lock()
					if client.IsQueueFull(err) {
						rep.Outcomes.SubmitRejected++
					} else {
						rep.Outcomes.SubmitErrors++
					}
					mu.Unlock()
					continue
				}
				if cancelEvery > 0 && i%cancelEvery == cancelEvery-1 {
					if _, err := cl.Cancel(ctx, job.ID); err != nil {
						mu.Lock()
						rep.Outcomes.SubmitErrors++
						mu.Unlock()
						continue
					}
				}
				if sseEvery > 0 && i%sseEvery == 1 {
					sseWG.Add(1)
					go func(id string) {
						defer sseWG.Done()
						_, serr := cl.Events(ctx, id, eda.SinkFunc(func(eda.Event) { events.Add(1) }))
						if serr != nil {
							mu.Lock()
							rep.Outcomes.StreamErrors++
							mu.Unlock()
						}
					}(job.ID)
				}
				final, err := cl.Wait(ctx, job.ID)
				lat := time.Since(t0)
				if err != nil {
					mu.Lock()
					rep.Outcomes.SubmitErrors++
					mu.Unlock()
					continue
				}
				mu.Lock()
				switch final.State {
				case "done":
					rep.Outcomes.Done++
					if final.Cached {
						rep.Outcomes.Cached++
					}
					latencies = append(latencies, float64(lat)/1e6)
					waits = append(waits, final.QueueWaitMS)
					for _, p := range final.Phases {
						phaseSum[p.Phase] += p.MS
					}
				case "cancelled":
					rep.Outcomes.Cancelled++
				default:
					rep.Outcomes.Failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sseWG.Wait()
	rep.DurationS = time.Since(start).Seconds()

	after, err := pool[0].Stats(ctx)
	if err != nil {
		return nil, err
	}
	terminal := rep.Outcomes.Done + rep.Outcomes.Cancelled + rep.Outcomes.Failed
	if rep.DurationS > 0 {
		rep.ThroughputJPS = float64(terminal) / rep.DurationS
	}
	rep.LatencyMS = exactQuantiles(latencies)
	rep.QueueWaitMS = exactQuantiles(waits)
	rep.PhaseMeanMS = map[string]float64{}
	for ph, sum := range phaseSum {
		rep.PhaseMeanMS[ph] = sum / float64(rep.Outcomes.Done)
	}
	rep.EventsStreamed = int(events.Load())
	rep.ReportCache.Hits = after.ReportCache.Hits - before.ReportCache.Hits
	rep.ReportCache.Misses = after.ReportCache.Misses - before.ReportCache.Misses
	if t := rep.ReportCache.Hits + rep.ReportCache.Misses; t > 0 {
		rep.ReportCache.HitRate = float64(rep.ReportCache.Hits) / float64(t)
	}
	rep.FarmResults.Hits = after.Farm.Results.Hits - before.Farm.Results.Hits
	rep.FarmResults.Misses = after.Farm.Results.Misses - before.Farm.Results.Misses
	rep.FarmResults.Computes = after.Farm.Results.Computes - before.Farm.Results.Computes
	if t := rep.FarmResults.Hits + rep.FarmResults.Misses; t > 0 {
		rep.FarmResults.HitRate = float64(rep.FarmResults.Hits) / float64(t)
	}
	// One scrape proves the exposition endpoint serves under load.
	if text, err := pool[0].Metrics(ctx); err == nil {
		rep.MetricsScrape = strings.Contains(text, "llm4eda_job_duration_seconds_count")
	}
	return rep, nil
}

// exactQuantiles computes nearest-rank percentiles over the raw samples
// — the measurement side stays exact so the server's histogram
// estimates have an independent reference.
func exactQuantiles(samples []float64) loadQuantiles {
	if len(samples) == 0 {
		return loadQuantiles{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return loadQuantiles{
		P50: at(0.5), P90: at(0.9), P99: at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// loadWaitReady polls /v1/stats until the server answers.
func loadWaitReady(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		probe, probeCancel := context.WithTimeout(ctx, time.Second)
		_, err := c.Stats(probe)
		probeCancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
