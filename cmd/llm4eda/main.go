// Command llm4eda is the CLI for the reproduction: it runs the paper's
// experiments, drives individual frameworks (repair, autochip, slt,
// agent), and lists the benchmark suites.
//
// Usage:
//
//	llm4eda exp <E1..E10|all> [-full] [-seed N]   regenerate paper artifacts
//	llm4eda repair [-tier T] [-no-rag]            run the Fig. 2 repair suite
//	llm4eda autochip [-tier T] [-k N] [-depth N]  run AutoChip on the suite
//	llm4eda slt [-evals N] [-gp]                  run the §V power loop
//	llm4eda agent [-tier T] <problem-id>...       drive designs end to end
//	llm4eda list                                  list benchmark problems
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llm4eda/internal/agent"
	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/experiments"
	"llm4eda/internal/gp"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
	"llm4eda/internal/repair"
	"llm4eda/internal/slt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llm4eda:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	switch args[0] {
	case "exp":
		return cmdExp(args[1:])
	case "repair":
		return cmdRepair(args[1:])
	case "autochip":
		return cmdAutochip(args[1:])
	case "slt":
		return cmdSLT(args[1:])
	case "agent":
		return cmdAgent(args[1:])
	case "list":
		return cmdList()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  llm4eda exp <E1..E10|all> [-full] [-seed N]   regenerate paper artifacts
  llm4eda repair [-tier T] [-no-rag]            run the Fig. 2 repair suite
  llm4eda autochip [-tier T] [-k N] [-depth N]  run AutoChip on the suite
  llm4eda slt [-evals N] [-gp]                  run the §V power loop
  llm4eda agent [-tier T] <problem-id>...       drive designs end to end
  llm4eda list                                  list benchmark problems
tiers: small | medium | large | frontier
`)
}

func parseTier(name string) (llm.Tier, error) {
	switch strings.ToLower(name) {
	case "small":
		return llm.TierSmall, nil
	case "medium":
		return llm.TierMedium, nil
	case "large":
		return llm.TierLarge, nil
	case "frontier":
		return llm.TierFrontier, nil
	default:
		return 0, fmt.Errorf("unknown tier %q (small|medium|large|frontier)", name)
	}
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at full scale (slow; used for EXPERIMENTS.md)")
	seed := fs.Uint64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exp needs one argument: E1..E10 or all")
	}
	scale := experiments.ScaleQuick
	if *full {
		scale = experiments.ScaleFull
	}
	r := experiments.Runner{Scale: scale, Seed: *seed}
	if fs.Arg(0) == "all" {
		for _, exp := range r.All() {
			fmt.Println(exp.Render())
		}
		return nil
	}
	exp, err := r.ByID(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println(exp.Render())
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	tierName := fs.String("tier", "frontier", "model tier")
	noRAG := fs.Bool("no-rag", false, "disable retrieval-augmented repair")
	seed := fs.Uint64("seed", 1, "model seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, err := parseTier(*tierName)
	if err != nil {
		return err
	}
	cfg := repair.Config{Model: llm.NewSimModel(tier, *seed)}
	if !*noRAG {
		cfg.Library = rag.DefaultCorrectionLibrary()
	}
	fw := repair.New(cfg)
	succ := 0
	kernels := repair.BenchKernels()
	for _, k := range kernels {
		out, err := fw.Repair(k.Source, k.Kernel, k.Vectors)
		if err != nil {
			return fmt.Errorf("%s: %w", k.ID, err)
		}
		status := "FAIL"
		if out.Success {
			status = "ok"
			succ++
		}
		fmt.Printf("%-20s %-5s iters=%d equivalence=%d/%d",
			k.ID, status, out.Iterations,
			out.EquivalenceVectors-out.Mismatches, out.EquivalenceVectors)
		if out.Optimized {
			fmt.Printf(" ppa: latency %d -> %d cycles",
				out.PPABefore.LatencyCyc, out.PPAAfter.LatencyCyc)
		}
		fmt.Println()
	}
	fmt.Printf("repaired %d/%d kernels (tier=%s rag=%v)\n", succ, len(kernels), tier, !*noRAG)
	return nil
}

func cmdAutochip(args []string) error {
	fs := flag.NewFlagSet("autochip", flag.ContinueOnError)
	tierName := fs.String("tier", "frontier", "model tier")
	k := fs.Int("k", 3, "candidates per round")
	depth := fs.Int("depth", 3, "feedback rounds")
	seed := fs.Uint64("seed", 1, "model seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, err := parseTier(*tierName)
	if err != nil {
		return err
	}
	solved := 0
	suite := benchset.Suite()
	for _, p := range suite {
		res, err := autochip.Run(p, autochip.Options{
			Model: llm.NewSimModel(tier, *seed), K: *k, Depth: *depth,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", p.ID, err)
		}
		status := "FAIL"
		if res.Solved {
			status = "ok"
			solved++
		}
		fmt.Printf("%-12s d%d %-5s rounds=%d candidates=%d best=%s\n",
			p.ID, p.Difficulty, status, res.Rounds, res.TotalCandidates, res.Best.Verdict)
	}
	fmt.Printf("solved %d/%d problems (tier=%s k=%d depth=%d)\n", solved, len(suite), tier, *k, *depth)
	return nil
}

func cmdSLT(args []string) error {
	fs := flag.NewFlagSet("slt", flag.ContinueOnError)
	evals := fs.Int("evals", 150, "snippet evaluations")
	runGP := fs.Bool("gp", false, "also run the genetic-programming baseline at 13/8 budget")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := slt.Run(slt.Config{
		Model:             llm.NewSimModel(llm.TierLarge, *seed),
		UseSCoT:           true,
		AdaptiveTemp:      true,
		DiversityPressure: true,
		MaxEvals:          *evals,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("LLM loop: %d snippets, %d compile failures, best %.3f W (final temp %.2f)\n",
		res.Evals, res.CompileFails, res.Best.Score, res.FinalTemp)
	if *runGP {
		gpRes := gp.Run(gp.Config{MaxEvals: *evals * 13 / 8, Seed: *seed})
		fmt.Printf("GP baseline: %d evaluations, best %.3f W (gap %+.3f W)\n",
			gpRes.Evals, gpRes.Best.Score, gpRes.Best.Score-res.Best.Score)
	}
	fmt.Println("\nbest snippet:")
	fmt.Println(res.Best.Source)
	return nil
}

func cmdAgent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	tierName := fs.String("tier", "frontier", "model tier")
	seed := fs.Uint64("seed", 1, "model seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, err := parseTier(*tierName)
	if err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = []string{"adder4"}
	}
	a, err := agent.New(agent.Config{Model: llm.NewSimModel(tier, *seed)})
	if err != nil {
		return err
	}
	for _, id := range ids {
		p := benchset.ByID(id)
		if p == nil {
			return fmt.Errorf("unknown problem %q (try: llm4eda list)", id)
		}
		report, err := a.RunProblem(p)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(report.Render())
	}
	return nil
}

func cmdList() error {
	fmt.Println("benchmark problems (VerilogEval-style suite):")
	for _, p := range benchset.Suite() {
		fmt.Printf("  %-12s d%d checks=%-4d %s\n", p.ID, p.Difficulty, p.Checks(), firstSentence(p.Spec))
	}
	fmt.Println("\nrepair kernels (Fig. 2 suite):")
	for _, k := range repair.BenchKernels() {
		fmt.Printf("  %-20s classes=%s\n", k.ID, strings.Join(k.Classes, ","))
	}
	return nil
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, ':'); i > 0 && i < 60 {
		return s[:i]
	}
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
