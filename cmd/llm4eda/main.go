// Command llm4eda is the CLI for the reproduction. Every framework runs
// through the unified eda front door — the dispatch table is generated
// from the eda registry, so a newly registered pipeline becomes a
// subcommand without CLI changes — plus the experiment regenerator and
// the benchmark listing.
//
// Usage:
//
//	llm4eda [-cpuprofile F] [-memprofile F] [-vmstats] <command> ...
//	llm4eda <framework> [-tier T] [-seed N] [-workers N] [-timeout D]
//	        [-p k=v ...] [-v] [-json] [problem-id]  run one framework (see list)
//	llm4eda exp [-full] [-seed N] [-timeout D] [-v] <E1..E12|all>
//	llm4eda list                               frameworks, problems, kernels
//	llm4eda serve [-addr A] [-workers N] [-queue N]  run the EDA job service
//
// tiers: small | medium | large | frontier
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"llm4eda/eda"
	"llm4eda/internal/benchset"
	"llm4eda/internal/experiments"
	"llm4eda/internal/repair"
	"llm4eda/internal/simfarm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llm4eda:", err)
		os.Exit(1)
	}
}

// command is one dispatch-table entry.
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

// commandTable builds the full dispatch table: one generated entry per
// registered eda pipeline, plus the experiment and listing commands.
func commandTable() []command {
	var cmds []command
	for _, name := range eda.Frameworks() {
		p, _ := eda.DefaultRegistry().Lookup(name)
		fw := name // capture
		cmds = append(cmds, command{
			name:    fw,
			summary: p.Doc,
			run:     func(args []string) error { return runFramework(fw, args) },
		})
	}
	cmds = append(cmds,
		command{name: "exp", summary: "regenerate paper artifacts (E1..E12|all)", run: cmdExp},
		command{name: "list", summary: "list frameworks, benchmark problems and repair kernels", run: func([]string) error { return cmdList() }},
		command{name: "serve", summary: "run the EDA job service (queued jobs, SSE progress, shared caches)", run: cmdServe},
		command{name: "loadgen", summary: "drive a live serve with mixed traffic and record latency/cache-hit percentiles", run: cmdLoadgen},
	)
	sort.Slice(cmds, func(i, j int) bool { return cmds[i].name < cmds[j].name })
	return cmds
}

func run(args []string) error {
	// Global profiling flags precede the subcommand, so any real
	// pipeline run can be profiled as-is: perf work on the simulator
	// engine is driven by profiles of real workloads, not just
	// micro-benchmarks. Parsing stops at the first non-flag argument.
	global := flag.NewFlagSet("llm4eda", flag.ContinueOnError)
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := global.String("memprofile", "", "write a heap profile taken at exit to this file")
	vmstats := global.Bool("vmstats", false, "print tiered-VM dispatch coverage to stderr at exit")
	global.Usage = usage
	if err := global.Parse(args); err != nil {
		return err
	}
	args = global.Args()
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage()
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *vmstats {
		// Summed over every simulation the shared farm executed during
		// this process: superinstruction coverage, the Tier A/B vs
		// generic dispatch split, and two-state promotions.
		defer func() {
			fmt.Fprintln(os.Stderr, "vmstats:", simfarm.Default().Stats().VM)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "llm4eda: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "llm4eda: memprofile:", err)
			}
		}()
	}
	for _, c := range commandTable() {
		if c.name == args[0] {
			return c.run(args[1:])
		}
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: llm4eda <command> [flags] [args]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commandTable() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", c.name, c.summary)
	}
	fmt.Fprint(os.Stderr, `
framework flags: [-tier T] [-seed N] [-workers N] [-timeout D] [-p k=v ...] [-v] [-json] [problem-id]
tiers: small | medium | large | frontier
`)
}

// paramFlags collects repeated -p name=value framework knobs.
type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("param must be name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("param %q: %v", name, err)
	}
	p[name] = f
	return nil
}

// runFramework drives one registered pipeline through eda.Run with the
// shared flag set.
func runFramework(name string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	tier := fs.String("tier", "", "model tier (small|medium|large|frontier)")
	seed := fs.Uint64("seed", 0, "run seed (0 selects the default)")
	workers := fs.Int("workers", 0, "batch-evaluation workers (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "wall-clock bound for the whole run (0 = none)")
	verbose := fs.Bool("v", false, "stream per-candidate and per-LLM-call events")
	quiet := fs.Bool("q", false, "suppress the event stream entirely")
	jsonOut := fs.Bool("json", false, "emit the final report as JSON on stdout (progress moves to stderr)")
	params := paramFlags{}
	fs.Var(params, "p", "framework knob as name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := eda.Spec{
		Framework: name,
		Run: eda.RunSpec{
			Seed: *seed, Tier: *tier, Workers: *workers, Deadline: *timeout,
		},
		Params: params,
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("%s takes at most one problem id, got %d", name, fs.NArg())
	}
	if fs.NArg() == 1 {
		spec.Problem = fs.Arg(0)
	}
	opts := []eda.Option{}
	if !*quiet {
		// With -json, stdout is reserved for the machine-readable report;
		// the human progress stream moves to stderr.
		progress := os.Stdout
		if *jsonOut {
			progress = os.Stderr
		}
		opts = append(opts, eda.WithSink(eda.ProgressPrinter(progress, *verbose)))
	}
	report, err := eda.Run(context.Background(), spec, opts...)
	if report != nil {
		if perr := printReport(report, *jsonOut); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// printReport renders the final report: the CLI table, or — under -json —
// the same wire encoding the serve API returns for its jobs, so scripts
// parse one format no matter which entry point ran the spec.
func printReport(report *eda.Report, asJSON bool) error {
	if !asJSON {
		fmt.Print(report.Render())
		return nil
	}
	b, err := report.JSON()
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, b, "", "  "); err != nil {
		return err
	}
	pretty.WriteByte('\n')
	_, err = os.Stdout.Write(pretty.Bytes())
	return err
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at full scale (slow; used for EXPERIMENTS.md)")
	seed := fs.Uint64("seed", 1, "experiment seed")
	timeout := fs.Duration("timeout", 0, "wall-clock bound for the run (0 = none)")
	verbose := fs.Bool("v", false, "print simfarm cache counters after each experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exp needs one argument: E1..E12 or all")
	}
	scale := experiments.ScaleQuick
	if *full {
		scale = experiments.ScaleFull
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	r := experiments.Runner{Scale: scale, Seed: *seed}
	ids := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		before := simfarm.Default().Stats()
		exp, err := r.ByID(ctx, id)
		if err != nil {
			return err
		}
		fmt.Println(exp.Render())
		if *verbose {
			printCacheStats(simfarm.Default().Stats().Delta(before))
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// printCacheStats renders one experiment's simfarm traffic via the
// shared event vocabulary (the same counters eda.Run streams as
// EventCache events).
func printCacheStats(stats simfarm.FarmStats) {
	sink := eda.ProgressPrinter(os.Stdout, true)
	simfarm.EmitStats(sink, stats)
	fmt.Println()
}

func cmdList() error {
	fmt.Println("frameworks (run with: llm4eda <framework> [flags] [problem-id]):")
	for _, name := range eda.Frameworks() {
		p, _ := eda.DefaultRegistry().Lookup(name)
		knobs := ""
		if len(p.Params) > 0 {
			knobs = " (knobs: " + strings.Join(p.Params, ", ") + ")"
		}
		fmt.Printf("  %-12s %s%s\n", name, p.Doc, knobs)
	}
	fmt.Println("\nbenchmark problems (VerilogEval-style suite):")
	for _, p := range benchset.Suite() {
		fmt.Printf("  %-12s d%d checks=%-4d %s\n", p.ID, p.Difficulty, p.Checks(), firstSentence(p.Spec))
	}
	fmt.Println("\nrepair kernels (Fig. 2 suite):")
	for _, k := range repair.BenchKernels() {
		fmt.Printf("  %-20s classes=%s\n", k.ID, strings.Join(k.Classes, ","))
	}
	return nil
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, ':'); i > 0 && i < 60 {
		return s[:i]
	}
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
