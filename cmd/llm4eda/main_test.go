package main

import (
	"testing"

	"llm4eda/internal/llm"
)

func TestParseTier(t *testing.T) {
	cases := map[string]llm.Tier{
		"small": llm.TierSmall, "MEDIUM": llm.TierMedium,
		"large": llm.TierLarge, "Frontier": llm.TierFrontier,
	}
	for name, want := range cases {
		got, err := parseTier(name)
		if err != nil || got != want {
			t.Errorf("parseTier(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseTier("gpt9"); err == nil {
		t.Error("expected error for unknown tier")
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run(nil); err == nil {
		t.Error("expected error for no args")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("expected error for unknown subcommand")
	}
	if err := run([]string{"exp"}); err == nil {
		t.Error("expected error for exp without id")
	}
	if err := run([]string{"exp", "E99"}); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run([]string{"agent", "no-such-problem"}); err == nil {
		t.Error("expected error for unknown problem")
	}
}

func TestFirstSentence(t *testing.T) {
	if got := firstSentence("A 4-bit adder: does things"); got != "A 4-bit adder" {
		t.Errorf("firstSentence = %q", got)
	}
	long := "x"
	for i := 0; i < 7; i++ {
		long += long
	}
	if got := firstSentence(long); len(got) > 64 {
		t.Errorf("long spec not truncated: %d", len(got))
	}
}
