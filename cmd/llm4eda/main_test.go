package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llm4eda/eda"
)

func TestRunDispatch(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run(nil); err == nil {
		t.Error("expected error for no args")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("expected error for unknown subcommand")
	}
	if err := run([]string{"exp"}); err == nil {
		t.Error("expected error for exp without id")
	}
	if err := run([]string{"exp", "E99"}); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run([]string{"agent", "no-such-problem"}); err == nil {
		t.Error("expected error for unknown problem")
	}
	if err := run([]string{"agent", "-tier", "gpt9"}); err == nil {
		t.Error("expected error for unknown tier")
	}
	if err := run([]string{"slt", "-p", "bogus=1"}); err == nil {
		t.Error("expected error for unknown framework param")
	}
	if err := run([]string{"agent", "adder4", "mux2"}); err == nil {
		t.Error("expected error for more than one problem id")
	}
}

// TestTableCoversRegistry pins the redesign's contract: every registered
// pipeline is reachable as a subcommand without CLI changes.
func TestTableCoversRegistry(t *testing.T) {
	have := map[string]bool{}
	for _, c := range commandTable() {
		have[c.name] = true
	}
	for _, fw := range eda.Frameworks() {
		if !have[fw] {
			t.Errorf("framework %q has no subcommand", fw)
		}
	}
	for _, extra := range []string{"exp", "list", "serve"} {
		if !have[extra] {
			t.Errorf("missing %q command", extra)
		}
	}
}

// TestJSONReportFlag pins the -json contract: stdout carries exactly one
// JSON document in the shared report wire format (the same bytes the
// serve API would return for this spec), progress noise goes to stderr.
func TestJSONReportFlag(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	// Drain concurrently: a report larger than the kernel pipe buffer
	// must not deadlock the writer.
	type readResult struct {
		out []byte
		err error
	}
	readCh := make(chan readResult, 1)
	go func() {
		out, err := io.ReadAll(r)
		readCh <- readResult{out, err}
	}()
	os.Stdout = w
	runErr := run([]string{"vrank", "-json", "-p", "k=3", "mux4"})
	w.Close()
	os.Stdout = old
	res := <-readCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	out := res.out
	if runErr != nil {
		t.Fatalf("run -json: %v", runErr)
	}
	var wire struct {
		Framework string             `json:"framework"`
		OK        bool               `json:"ok"`
		Summary   string             `json:"summary"`
		Metrics   map[string]float64 `json:"metrics"`
		Spec      eda.Spec           `json:"spec"`
	}
	if err := json.Unmarshal(out, &wire); err != nil {
		t.Fatalf("stdout is not one JSON report: %v\n%s", err, out)
	}
	if wire.Framework != "vrank" || wire.Summary == "" || len(wire.Metrics) == 0 {
		t.Errorf("report wire incomplete: %+v", wire)
	}
	if wire.Spec.Run.Seed != 1 || wire.Spec.Run.Tier != "frontier" {
		t.Errorf("wire spec lost its defaults: %+v", wire.Spec.Run)
	}
}

// TestServeArgValidation: serve rejects positional args and a bad listen
// address without hanging.
func TestServeArgValidation(t *testing.T) {
	if err := run([]string{"serve", "extra"}); err == nil {
		t.Error("expected error for positional args")
	}
	if err := run([]string{"serve", "-addr", "999.999.999.999:1"}); err == nil {
		t.Error("expected error for unlistenable address")
	}
}

func TestParamFlags(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("k=4"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := p.Set("temperature=0.8"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if p["k"] != 4 || p["temperature"] != 0.8 {
		t.Errorf("params = %v", p)
	}
	if err := p.Set("bad"); err == nil {
		t.Error("expected error for missing =")
	}
	if err := p.Set("x=notanumber"); err == nil {
		t.Error("expected error for non-numeric value")
	}
}

func TestFirstSentence(t *testing.T) {
	if got := firstSentence("A 4-bit adder: does things"); got != "A 4-bit adder" {
		t.Errorf("firstSentence = %q", got)
	}
	long := strings.Repeat("x", 128)
	if got := firstSentence(long); len(got) > 64 {
		t.Errorf("long spec not truncated: %d", len(got))
	}
}

// TestProfilingFlagsWriteFiles smoke-tests the global -cpuprofile and
// -memprofile flags: after a real (tiny) run both files must exist and
// be non-empty, so future perf PRs can profile actual pipeline runs.
func TestProfilingFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"-cpuprofile", cpu, "-memprofile", mem, "list"}); err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// The flags must not eat the subcommand's own flags.
	if err := run([]string{"-cpuprofile", filepath.Join(dir, "c2.prof"), "exp"}); err == nil {
		t.Error("expected error for exp without id under profiling")
	}
}
