// xdebug: the §VI cross-level debugging loop — C-vs-RTL trace alignment,
// first-divergence localization, and diagnosis-guided repair. The demo
// first uses the harness directly: a fault injected into an internal
// pipeline stage of satadd8 is localized to its exact line by aligning
// the RTL commit trace against the problem's untimed C model (the XAlign
// table maps the internal stage to a C helper, so the divergence is
// caught upstream of the output port). It then runs the full repair loop
// through the eda front door on a mutated alu8, streaming one diagnosis
// event per round until the design is trace-identical to the model.
//
// Run with: go run ./examples/xdebug
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"llm4eda/eda"
	"llm4eda/internal/benchset"
	"llm4eda/internal/xdebug"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xdebug:", err)
		os.Exit(1)
	}
}

func run() error {
	// Direct harness use: localize a fault in an internal stage.
	p := benchset.ByID("satadd8")
	h, err := xdebug.NewHarness(p, "", 24)
	if err != nil {
		return err
	}
	buggy := strings.Replace(p.Reference, "a + b", "a - b", 1)
	diag := h.Diagnose(buggy)
	fmt.Println("injected fault: satadd8's internal sum computes a - b")
	fmt.Println("diagnosis:")
	fmt.Println(indent(diag.Feedback()))
	fmt.Println()

	// Front door: deterministic mutant of alu8, guided repair until the
	// traces align. The event stream (-v equivalent) shows one
	// "diagnosis" candidate event per round.
	spec := eda.Spec{
		Framework: "xdebug",
		Problem:   "alu8",
		Run:       eda.RunSpec{Tier: "frontier", Seed: 1},
		Params:    map[string]float64{"mutant": 1, "rounds": 8},
	}
	report, err := eda.Run(context.Background(), spec,
		eda.WithSink(eda.ProgressPrinter(os.Stdout, true)))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Render())

	res := report.Detail.([]*xdebug.Result)[0]
	fmt.Printf("\nrepair trajectory for %s:\n", res.Problem)
	for _, r := range res.Rounds {
		verdict := "diverged"
		if r.Diag == nil {
			verdict = "traces aligned"
		} else if r.Diag.Outcome == xdebug.OutcomeDiverged {
			verdict = fmt.Sprintf("diverged at vector %d (%s), suspect line %d",
				r.Diag.Epoch, r.Diag.Variable, r.Diag.SuspectLine)
		} else {
			verdict = r.Diag.Outcome
		}
		fmt.Printf("  round %d: %s (testbench pass=%v)\n", r.N, verdict, r.TBPassed)
	}
	fmt.Printf("converged=%v after %d rounds\n", res.Converged, len(res.Rounds))
	return nil
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
