// Quickstart: drive one design through the full LLM-powered EDA flow
// (Fig. 1/6 of the paper) — natural-language spec in, verified and
// synthesized design out — and print the unified stage report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"llm4eda/internal/agent"
	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A GPT-4o-class simulated model; swap the tier (or the Model
	// implementation) to explore weaker assistants.
	model := llm.NewSimModel(llm.TierFrontier, 2026)

	a, err := agent.New(agent.Config{Model: model})
	if err != nil {
		return err
	}

	// The 4-bit carry adder from the benchmark suite: the agent only sees
	// the natural-language spec; the testbench is the signoff oracle.
	problem := benchset.ByID("adder4")
	fmt.Println("specification:")
	fmt.Println(" ", problem.Spec)
	fmt.Println()

	report, err := a.RunProblem(problem)
	if err != nil {
		return err
	}

	fmt.Println(report.Render())
	fmt.Println("generated design:")
	fmt.Println(report.Design.Source)
	if !report.Verdict.Pass() {
		return fmt.Errorf("design did not pass signoff: %s", report.Verdict)
	}
	fmt.Println("signoff: all testbench checks pass")
	return nil
}
