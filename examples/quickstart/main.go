// Quickstart: the canonical demo of the unified eda front door. One
// Spec — framework name, problem, execution envelope — drives a design
// through the full LLM-powered EDA flow (Fig. 1/6 of the paper) while
// the run's event stream (flow phases, scored candidates, simfarm cache
// traffic) prints live. The same Spec shape reaches every framework in
// the suite: swap Framework for "autochip", "slt", "repair", ... and
// eda.Run does the rest.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"llm4eda/eda"
	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The 4-bit carry adder from the benchmark suite: the agent only sees
	// the natural-language spec; the testbench is the signoff oracle.
	problem := benchset.ByID("adder4")
	fmt.Println("specification:")
	fmt.Println(" ", problem.Spec)
	fmt.Println()

	spec := eda.Spec{
		Framework: "agent",
		Problem:   "adder4",
		// A GPT-4o-class simulated model; swap the tier to explore weaker
		// assistants ("small" | "medium" | "large" | "frontier").
		Run: eda.RunSpec{Tier: "frontier", Seed: 2026},
	}

	// The event stream is the progress channel of the new API: phases,
	// candidates and cache traffic arrive as the run executes.
	sink := eda.ProgressPrinter(os.Stdout, false)
	report, err := eda.Run(context.Background(), spec, eda.WithSink(sink))
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(report.Render())

	// Detail carries the framework-native result for callers that need
	// more than the uniform envelope — here, the agent's per-stage report.
	flow := report.Detail.([]*core.Report)[0]
	fmt.Println()
	fmt.Println(flow.Render())
	fmt.Println("generated design:")
	fmt.Println(flow.Design.Source)
	if !flow.Verdict.Pass() {
		return fmt.Errorf("design did not pass signoff: %s", flow.Verdict)
	}
	fmt.Println("signoff: all testbench checks pass")
	return nil
}
