// crosscheck: the paper's §VI "High-Level Guided RTL Debugging" direction
// through the eda front door — the LLM writes an untimed C behavioral
// model (its strong suit), and RTL candidates are validated by
// cross-level comparison on shared stimuli, no hand-written testbench
// involved. The front-door run validates the reference design; a buggy
// mutant is then checked directly to show the localized evidence the
// debugging loop feeds back.
//
// Run with: go run ./examples/crosscheck
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"llm4eda/eda"
	"llm4eda/internal/benchset"
	"llm4eda/internal/crosscheck"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crosscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	p := benchset.ByID("alu8")
	fmt.Println("spec:", p.Spec)
	fmt.Println()

	// Front door: generate the C model and cross-check the reference
	// design, with the event stream showing each candidate verdict.
	spec := eda.Spec{
		Framework: "crosscheck",
		Problem:   p.ID,
		Run:       eda.RunSpec{Tier: "large", Seed: 31},
		Params:    map[string]float64{"vectors": 32},
	}
	report, err := eda.Run(context.Background(), spec,
		eda.WithSink(eda.ProgressPrinter(os.Stdout, true)))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Render())

	res := report.Detail.([]*crosscheck.Result)[0]
	fmt.Println("\nLLM-generated untimed C model:")
	fmt.Println(res.CModel)
	fmt.Printf("reference design: %d vectors, clean=%v\n", res.Vectors, res.Clean())

	// A buggy mutant is flagged with localized evidence.
	buggy := strings.Replace(p.Reference, "a + b", "a - b", 1)
	bad, err := crosscheck.Validate(context.Background(), buggy, p, res.CModel, 32)
	if err != nil {
		return err
	}
	fmt.Printf("\nbuggy design (op 0 subtracts): clean=%v, %d mismatches\n",
		bad.Clean(), len(bad.Mismatches))
	for i, m := range bad.Mismatches {
		if i >= 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  inputs=%v output %s: rtl=%d, high-level model=%d\n",
			m.Inputs, m.Port, m.RTL, m.HighLvl)
	}
	fmt.Println("\nno testbench was used: the C model alone localized the bug")
	return nil
}
