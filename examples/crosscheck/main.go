// crosscheck: the paper's §VI "High-Level Guided RTL Debugging" direction
// as a working loop — the LLM writes an untimed C behavioral model (its
// strong suit), and RTL candidates are validated by cross-level comparison
// on shared stimuli, with no hand-written testbench involved.
//
// Run with: go run ./examples/crosscheck
package main

import (
	"fmt"
	"os"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/crosscheck"
	"llm4eda/internal/llm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crosscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	p := benchset.ByID("alu8")
	model := llm.NewSimModel(llm.TierLarge, 31)

	fmt.Println("spec:", p.Spec)
	cm, err := crosscheck.GenerateModel(model, p)
	if err != nil {
		return err
	}
	fmt.Println("\nLLM-generated untimed C model:")
	fmt.Println(cm)

	// A correct design passes the cross-level check...
	res, err := crosscheck.Validate(p.Reference, p, cm, 32)
	if err != nil {
		return err
	}
	fmt.Printf("reference design: %d vectors, clean=%v\n", res.Vectors, res.Clean())

	// ...a buggy one is flagged with localized evidence.
	buggy := strings.Replace(p.Reference, "a + b", "a - b", 1)
	res, err = crosscheck.Validate(buggy, p, cm, 32)
	if err != nil {
		return err
	}
	fmt.Printf("\nbuggy design (op 0 subtracts): clean=%v, %d mismatches\n",
		res.Clean(), len(res.Mismatches))
	for i, m := range res.Mismatches {
		if i >= 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  inputs=%v output %s: rtl=%d, high-level model=%d\n",
			m.Inputs, m.Port, m.RTL, m.HighLvl)
	}
	fmt.Println("\nno testbench was used: the C model alone localized the bug")
	return nil
}
