// hlsrepair: the paper's Fig. 2 case study end to end on one kernel,
// through the eda front door — a malloc-using C program travels as the
// Spec's Source payload, is diagnosed, repaired with retrieval-augmented
// prompting, proven equivalent by C-RTL co-simulation, and PPA-optimized
// with pragmas, with each repair stage streaming as an event.
//
// Run with: go run ./examples/hlsrepair
package main

import (
	"context"
	"fmt"
	"os"

	"llm4eda/eda"
	"llm4eda/internal/repair"
)

const brokenKernel = `
int moving_sum(int n) {
    int *window = (int*)malloc(8 * sizeof(int));
    for (int i = 0; i < 8; i++) {
        window[i] = 0;
    }
    int total = 0;
    int x = n;
    while (x > 0) {
        window[x % 8] = window[x % 8] + x;
        x = x / 3;
    }
    for (int i = 0; i < 8; i++) {
        total = total + window[i];
    }
    free(window);
    return total;
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hlsrepair:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("original kernel (dynamic memory + unbounded loop):")
	fmt.Println(brokenKernel)
	fmt.Println()

	spec := eda.Spec{
		Framework: "repair",
		Source:    brokenKernel,
		Kernel:    "moving_sum",
		Vectors:   [][]int64{{5}, {100}, {12345}, {1}},
		Run:       eda.RunSpec{Tier: "frontier", Seed: 7},
	}
	report, err := eda.Run(context.Background(), spec,
		eda.WithSink(eda.ProgressPrinter(os.Stdout, false)))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Render())

	out := report.Detail.([]*repair.Outcome)[0]
	fmt.Println("\nactual errors (HLS frontend):")
	for _, e := range out.ActualErrors {
		fmt.Println("  -", e)
	}
	if !out.Success {
		return fmt.Errorf("repair failed")
	}
	fmt.Println("\nrepaired HLS-C kernel:")
	fmt.Println(out.RepairedSource)
	fmt.Printf("equivalence: %d/%d vectors match the original CPU execution\n",
		out.EquivalenceVectors-out.Mismatches, out.EquivalenceVectors)
	fmt.Printf("PPA: %s", out.PPABefore)
	if out.Optimized {
		fmt.Printf("  ->  %s (after pragma optimization)", out.PPAAfter)
	}
	fmt.Println()
	return nil
}
