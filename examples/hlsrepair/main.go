// hlsrepair: the paper's Fig. 2 case study end to end on one kernel — a
// malloc-using C program is diagnosed, repaired with retrieval-augmented
// prompting, proven equivalent by C-RTL co-simulation, and PPA-optimized
// with pragmas.
//
// Run with: go run ./examples/hlsrepair
package main

import (
	"fmt"
	"os"

	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
	"llm4eda/internal/repair"
)

const brokenKernel = `
int moving_sum(int n) {
    int *window = (int*)malloc(8 * sizeof(int));
    for (int i = 0; i < 8; i++) {
        window[i] = 0;
    }
    int total = 0;
    int x = n;
    while (x > 0) {
        window[x % 8] = window[x % 8] + x;
        x = x / 3;
    }
    for (int i = 0; i < 8; i++) {
        total = total + window[i];
    }
    free(window);
    return total;
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hlsrepair:", err)
		os.Exit(1)
	}
}

func run() error {
	fw := repair.New(repair.Config{
		Model:   llm.NewSimModel(llm.TierFrontier, 7),
		Library: rag.DefaultCorrectionLibrary(),
	})

	fmt.Println("original kernel (dynamic memory + unbounded loop):")
	fmt.Println(brokenKernel)

	out, err := fw.Repair(brokenKernel, "moving_sum", [][]int64{{5}, {100}, {12345}, {1}})
	if err != nil {
		return err
	}

	fmt.Println("\nstage log:")
	for _, s := range out.Stages {
		status := "ok"
		if !s.OK {
			status = "FAIL"
		}
		fmt.Printf("  %-18s %-5s %s\n", s.Stage, status, s.Detail)
	}
	fmt.Println("\nactual errors (HLS frontend):")
	for _, e := range out.ActualErrors {
		fmt.Println("  -", e)
	}
	if !out.Success {
		return fmt.Errorf("repair failed")
	}
	fmt.Println("\nrepaired HLS-C kernel:")
	fmt.Println(out.RepairedSource)
	fmt.Printf("equivalence: %d/%d vectors match the original CPU execution\n",
		out.EquivalenceVectors-out.Mismatches, out.EquivalenceVectors)
	fmt.Printf("PPA: %s", out.PPABefore)
	if out.Optimized {
		fmt.Printf("  ->  %s (after pragma optimization)", out.PPAAfter)
	}
	fmt.Println()
	return nil
}
