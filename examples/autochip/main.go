// autochip: the paper's Fig. 4 framework on a hard benchmark problem,
// driven through the eda front door — tree search over candidate designs
// with EDA-tool feedback. The verbose event stream shows every round,
// every model call and every scored candidate as the search runs; the
// structured conversational flow of [10] is contrasted at the end.
//
// Run with: go run ./examples/autochip
package main

import (
	"context"
	"fmt"
	"os"

	"llm4eda/eda"
	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autochip:", err)
		os.Exit(1)
	}
}

func run() error {
	problem := benchset.ByID("det101") // difficulty-5 FSM
	fmt.Println("problem:", problem.ID)
	fmt.Println("spec:   ", problem.Spec)
	fmt.Println()

	// A GPT-4-class model with tree search: 3 candidates per round, up to
	// 4 feedback rounds. Framework knobs travel as Spec params.
	spec := eda.Spec{
		Framework: "autochip",
		Problem:   problem.ID,
		Run:       eda.RunSpec{Tier: "large", Seed: 99},
		Params:    map[string]float64{"k": 3, "depth": 4, "temperature": 0.8},
	}
	report, err := eda.Run(context.Background(), spec,
		eda.WithSink(eda.ProgressPrinter(os.Stdout, true)))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Render())

	res := report.Detail.([]*autochip.Result)[0]
	fmt.Printf("\nsolved=%v after %d rounds, %d candidates, %d tokens in / %d out\n",
		res.Solved, res.Rounds, res.TotalCandidates, res.TokensIn, res.TokensOut)
	fmt.Println("final verdict:", res.Best.Verdict)
	if res.Best.Feedback != "" {
		fmt.Println("last tool feedback:")
		fmt.Println(res.Best.Feedback)
	}
	fmt.Println("\nfinal design:")
	fmt.Println(res.Best.Source)

	// Contrast with the earlier structured conversational flow [10]:
	// the model also writes its own (coverage-lossy) testbench.
	flow, err := autochip.StructuredFlow(context.Background(), problem,
		llm.NewSimModel(llm.TierLarge, 99), 8, verilog.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nstructured-flow comparison: solved=%v with %d human interventions "+
		"(own testbench had %d checks vs %d in the reference)\n",
		flow.Solved, flow.HumanInterventions, flow.OwnTBChecks, problem.Checks())
	return nil
}
