// autochip: the paper's Fig. 4 framework on a hard benchmark problem —
// tree search over candidate designs with EDA-tool feedback, showing the
// per-round candidates, their testbench verdicts, and the tool output that
// flows back into the next prompt.
//
// Run with: go run ./examples/autochip
package main

import (
	"fmt"
	"os"

	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autochip:", err)
		os.Exit(1)
	}
}

func run() error {
	problem := benchset.ByID("det101") // difficulty-5 FSM
	fmt.Println("problem:", problem.ID)
	fmt.Println("spec:   ", problem.Spec)
	fmt.Println()

	// A GPT-4-class model with tree search: 3 candidates per round, up to
	// 4 feedback rounds.
	res, err := autochip.Run(problem, autochip.Options{
		Model:       llm.NewSimModel(llm.TierLarge, 99),
		K:           3,
		Depth:       4,
		Temperature: 0.8,
	})
	if err != nil {
		return err
	}

	fmt.Printf("solved=%v after %d rounds, %d candidates, %d tokens in / %d out\n",
		res.Solved, res.Rounds, res.TotalCandidates, res.TokensIn, res.TokensOut)
	fmt.Println("final verdict:", res.Best.Verdict)
	if res.Best.Feedback != "" {
		fmt.Println("last tool feedback:")
		fmt.Println(res.Best.Feedback)
	}
	fmt.Println("\nfinal design:")
	fmt.Println(res.Best.Source)

	// Contrast with the earlier structured conversational flow [10]:
	// the model also writes its own (coverage-lossy) testbench.
	flow, err := autochip.StructuredFlow(problem, llm.NewSimModel(llm.TierLarge, 99), 8, verilog.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nstructured-flow comparison: solved=%v with %d human interventions "+
		"(own testbench had %d checks vs %d in the reference)\n",
		flow.Solved, flow.HumanInterventions, flow.OwnTBChecks, problem.Checks())
	return nil
}
