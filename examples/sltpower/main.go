// sltpower: the paper's §V case study through the eda front door — an
// LLM optimization loop generating C programs that maximize the power
// draw of a BOOM-class out-of-order RISC-V core, compared against the
// genetic-programming baseline at a longer budget (the paper's 24 h vs
// 39 h). Both arms run through the same eda.Run call; only the Spec
// changes.
//
// Run with: go run ./examples/sltpower
package main

import (
	"context"
	"fmt"
	"os"

	"llm4eda/eda"
	"llm4eda/internal/slt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sltpower:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	sink := eda.ProgressPrinter(os.Stdout, false)

	fmt.Println("running the LLM optimization loop (SCoT prompts, adaptive")
	fmt.Println("temperature, Levenshtein diversity pressure)...")
	llmReport, err := eda.Run(ctx, eda.Spec{
		Framework: "slt",
		Run:       eda.RunSpec{Tier: "large", Seed: 24},
		Params:    map[string]float64{"evals": 150},
	}, eda.WithSink(sink))
	if err != nil {
		return err
	}
	fmt.Print(llmReport.Render())
	fmt.Println()

	fmt.Println("running the genetic-programming baseline at 13/8 the budget...")
	gpReport, err := eda.Run(ctx, eda.Spec{
		Framework: "gp",
		Run:       eda.RunSpec{Seed: 24},
		Params:    map[string]float64{"evals": 150 * 13 / 8},
	}, eda.WithSink(sink))
	if err != nil {
		return err
	}
	fmt.Print(gpReport.Render())
	fmt.Println()

	gap := gpReport.Metrics["best_watts"] - llmReport.Metrics["best_watts"]
	fmt.Printf("gap: GP beats the LLM loop by %.3f W (paper: 0.640 W with the\n", gap)
	fmt.Println("same ordering; the LLM loop saturates first)")

	best := llmReport.Detail.(*slt.Result).Best
	fmt.Println("\nbest LLM snippet:")
	fmt.Println(best.Source)
	return nil
}
