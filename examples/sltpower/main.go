// sltpower: the paper's §V case study — an LLM optimization loop
// generating C programs that maximize the power draw of a BOOM-class
// out-of-order RISC-V core, compared against the genetic-programming
// baseline at a longer budget (the paper's 24 h vs 39 h).
//
// Run with: go run ./examples/sltpower
package main

import (
	"fmt"
	"os"

	"llm4eda/internal/boom"
	"llm4eda/internal/gp"
	"llm4eda/internal/llm"
	"llm4eda/internal/slt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sltpower:", err)
		os.Exit(1)
	}
}

func run() error {
	bopts := boom.RunOptions{MaxInsts: 400_000}

	fmt.Println("running the LLM optimization loop (SCoT prompts, adaptive")
	fmt.Println("temperature, Levenshtein diversity pressure)...")
	llmRes, err := slt.Run(slt.Config{
		Model:             llm.NewSimModel(llm.TierLarge, 24),
		UseSCoT:           true,
		AdaptiveTemp:      true,
		DiversityPressure: true,
		MaxEvals:          150,
		Boom:              bopts,
		Seed:              24,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %d snippets, %d compile failures, best %.3f W\n\n",
		llmRes.Evals, llmRes.CompileFails, llmRes.Best.Score)

	fmt.Println("running the genetic-programming baseline at 13/8 the budget...")
	gpRes := gp.Run(gp.Config{MaxEvals: 150 * 13 / 8, Boom: bopts, Seed: 24})
	fmt.Printf("  %d evaluations, best %.3f W\n\n", gpRes.Evals, gpRes.Best.Score)

	fmt.Printf("gap: GP beats the LLM loop by %.3f W (paper: 0.640 W with the\n",
		gpRes.Best.Score-llmRes.Best.Score)
	fmt.Println("same ordering; the LLM loop saturates first)")

	fmt.Println("\nbest LLM snippet:")
	fmt.Println(llmRes.Best.Source)
	return nil
}
