// Command servedemo exercises a running llm4eda job service end to end:
// it submits one quick-scale job through the typed eda/client package,
// streams the job's progress events live over SSE, waits for the final
// report, resubmits the identical spec to demonstrate the cross-request
// report cache, runs a second job through the cross-level debugger while
// counting its per-round diagnosis frames off the SSE stream, runs a
// third job through the lint engine while counting its per-round screen
// verdicts, and prints the server's queue/cache statistics. The
// `make serve-smoke` CI target runs exactly this against a freshly
// started `llm4eda serve`.
//
// Usage:
//
//	llm4eda serve &
//	go run ./examples/servedemo [-addr http://127.0.0.1:8372]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8372", "server base URL")
	framework := flag.String("framework", "vrank", "framework to run")
	problem := flag.String("problem", "mux4", "benchmark problem")
	flag.Parse()
	if err := run(*addr, *framework, *problem); err != nil {
		fmt.Fprintln(os.Stderr, "servedemo:", err)
		os.Exit(1)
	}
}

func run(addr, framework, problem string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New(addr)

	// The server may still be binding its listener (serve-smoke starts it
	// in the background moments before us): poll stats until it answers.
	if err := waitReady(ctx, c); err != nil {
		return fmt.Errorf("server at %s not ready: %w", addr, err)
	}

	spec := eda.Spec{
		Framework: framework,
		Problem:   problem,
		Params:    map[string]float64{"k": 3},
	}
	job, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (state %s)\n", job.ID, job.State)

	// Stream progress live; Events returns the terminal status with the
	// server's "end" frame.
	if _, err := c.Events(ctx, job.ID, eda.ProgressPrinter(os.Stdout, false)); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	job, err = c.Wait(ctx, job.ID)
	if err != nil {
		return err
	}
	report, err := job.DecodeReport()
	if err != nil {
		return err
	}
	fmt.Printf("%s %s: %s (%.1f ms)\n", report.Framework, job.State, report.Summary, report.ElapsedMS)
	if job.State != "done" {
		return fmt.Errorf("job finished %s: %s", job.State, job.Error)
	}

	// Same spec again: the content-addressed report store answers without
	// re-running anything.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("resubmitted as %s: state %s, cached=%v\n", again.ID, again.State, again.Cached)
	if !again.Cached {
		return fmt.Errorf("resubmission was not served from the report cache")
	}

	// A second job through the cross-level debugger: the service layer
	// inherits xdebug's per-round diagnosis events through the shared
	// event vocabulary, so the SSE stream carries one "diagnosis"
	// candidate frame per repair round. Count them off the wire.
	xspec := eda.Spec{
		Framework: "xdebug",
		Problem:   "mux2",
		Params:    map[string]float64{"vectors": 8, "rounds": 4},
	}
	xjob, err := c.Submit(ctx, xspec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (xdebug/mux2, state %s)\n", xjob.ID, xjob.State)
	diagnoses := 0
	progress := eda.ProgressPrinter(os.Stdout, true)
	counting := eda.SinkFunc(func(ev eda.Event) {
		if ev.Kind == eda.EventCandidate && ev.Framework == "xdebug" && ev.Phase == "diagnosis" {
			diagnoses++
		}
		progress.Emit(ev)
	})
	if _, err := c.Events(ctx, xjob.ID, counting); err != nil {
		return fmt.Errorf("xdebug event stream: %w", err)
	}
	xjob, err = c.Wait(ctx, xjob.ID)
	if err != nil {
		return err
	}
	if xjob.State != "done" {
		return fmt.Errorf("xdebug job finished %s: %s", xjob.State, xjob.Error)
	}
	if diagnoses == 0 {
		return fmt.Errorf("xdebug SSE stream carried no per-round diagnosis events")
	}
	fmt.Printf("xdebug diagnosis events over SSE: %d\n", diagnoses)

	// A third job through the lint engine: an error-class mutant is
	// rejected by the pre-simulation screen, and the per-round screen
	// verdicts ride the same SSE stream. Count them off the wire.
	lspec := eda.Spec{
		Framework: "lint",
		Problem:   "alu8",
		Params:    map[string]float64{"rounds": 6},
	}
	ljob, err := c.Submit(ctx, lspec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (lint/alu8, state %s)\n", ljob.ID, ljob.State)
	screens := 0
	lprogress := eda.ProgressPrinter(os.Stdout, true)
	lcounting := eda.SinkFunc(func(ev eda.Event) {
		if ev.Kind == eda.EventCandidate && ev.Framework == "lint" && ev.Phase == "screen" {
			screens++
		}
		lprogress.Emit(ev)
	})
	if _, err := c.Events(ctx, ljob.ID, lcounting); err != nil {
		return fmt.Errorf("lint event stream: %w", err)
	}
	ljob, err = c.Wait(ctx, ljob.ID)
	if err != nil {
		return err
	}
	if ljob.State != "done" {
		return fmt.Errorf("lint job finished %s: %s", ljob.State, ljob.Error)
	}
	if screens == 0 {
		return fmt.Errorf("lint SSE stream carried no screen verdict events")
	}
	fmt.Printf("lint screen events over SSE: %d\n", screens)

	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("stats: %d workers, queue depth %d, %d completed, report cache %d/%d hit/miss, sim result cache %d hits\n",
		st.Workers, st.QueueDepth, st.Completed,
		st.ReportCache.Hits, st.ReportCache.Misses, st.Farm.Results.Hits)
	return nil
}

func waitReady(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		probe, probeCancel := context.WithTimeout(ctx, time.Second)
		_, err := c.Stats(probe)
		probeCancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
