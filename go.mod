module llm4eda

go 1.22
