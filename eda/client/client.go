// Package client is the typed HTTP client for the llm4eda job service
// (`llm4eda serve`, package internal/edaserver). It speaks the /v1 wire
// protocol: submit an eda.Spec as a job, poll or wait for its report,
// stream its progress events (the same core event vocabulary every local
// eda.Run emits) over Server-Sent Events, cancel it, and read the
// server's queue/cache statistics.
//
//	c := client.New("http://127.0.0.1:8372")
//	job, err := c.Submit(ctx, eda.Spec{Framework: "vrank", Problem: "mux4"})
//	err = c.Events(ctx, job.ID, eda.ProgressPrinter(os.Stdout, false))
//	job, err = c.Wait(ctx, job.ID)
//	report, err := job.DecodeReport()
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/simfarm"
)

// Job mirrors the server's job status wire form.
type Job struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Created is the server-side submission time (RFC 3339).
	Created string `json:"created"`
	// EventsDropped counts events evicted from the job's server-side
	// replay ring before any subscriber (or resume) could see them.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// QueueWaitMS is how long the job sat queued before a worker popped
	// it (zero for jobs answered from the report cache at submission).
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// Phases is the server's span breakdown of the job: every canonical
	// phase in flow order; N == 0 marks a phase that never ran (a cached
	// hit reports sim at 0 ms with N 0).
	Phases []Phase `json:"phases,omitempty"`
	// Report is the raw shared-wire-format report ((*eda.Report).JSON)
	// once the job produced one; DecodeReport types it.
	Report json.RawMessage `json:"report,omitempty"`
}

// Phase is one row of a job's span breakdown.
type Phase struct {
	Phase string  `json:"phase"`
	MS    float64 `json:"ms"`
	N     int     `json:"n"`
}

// PhaseMS returns the accumulated milliseconds of one named phase
// (zero when the breakdown lacks it).
func (j *Job) PhaseMS(name string) float64 {
	for _, p := range j.Phases {
		if p.Phase == name {
			return p.MS
		}
	}
	return 0
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// Report is the shared report wire format — the exact type the server
// encodes ((*eda.Report).JSON), so server and client can never drift.
// Detail stays raw: callers that need the framework-native result decode
// it against that framework's result struct.
type Report = eda.ReportWire

// DecodeReport decodes the job's report, or fails when none is attached
// yet.
func (j *Job) DecodeReport() (*Report, error) {
	if len(j.Report) == 0 {
		return nil, fmt.Errorf("client: job %s (%s) carries no report", j.ID, j.State)
	}
	var r Report
	if err := json.Unmarshal(j.Report, &r); err != nil {
		return nil, fmt.Errorf("client: decoding job %s report: %w", j.ID, err)
	}
	return &r, nil
}

// FarmStats is the simulation farm's per-layer traffic as the server
// reports it (the same type the eda.ReportWire carries as Cache).
type FarmStats = simfarm.FarmStats

// Stats mirrors the server's /v1/stats reply.
type Stats struct {
	Workers    int            `json:"workers"`
	QueueDepth int            `json:"queue_depth"`
	Draining   bool           `json:"draining,omitempty"`
	JobStates  map[string]int `json:"job_states"`
	Submitted  uint64         `json:"submitted"`
	Completed  uint64         `json:"completed"`
	Failed     uint64         `json:"failed"`
	Cancelled  uint64         `json:"cancelled"`
	Rejected   uint64         `json:"rejected"`
	// Resilience counters: recovered pipeline panics, watchdog-cancelled
	// wedged jobs, absorbed transient retries, failed report-store writes,
	// and replay-ring evictions summed over retained jobs.
	Panics        uint64 `json:"panics,omitempty"`
	WatchdogKills uint64 `json:"watchdog_kills,omitempty"`
	Retries       uint64 `json:"retries,omitempty"`
	StoreFails    uint64 `json:"store_fails,omitempty"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// Queue-wait distribution over finished jobs (enqueue→worker-pop).
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	ReportCache    struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Len    int    `json:"len"`
	} `json:"report_cache"`
	Farm FarmStats `json:"farm"`
}

// APIError is a non-2xx server reply.
type APIError struct {
	StatusCode int
	// RetryAfter is the server's backoff hint on 429/503 replies: the
	// parsed Retry-After header (delta-seconds or HTTP-date), or a small
	// default when the server sent none. Zero on other status codes.
	RetryAfter time.Duration
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server replied %d: %s", e.StatusCode, e.Message)
}

// IsQueueFull reports whether err is the server's 429 backpressure reply.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// Client talks to one server.
type Client struct {
	base       string
	hc         *http.Client
	poll       time.Duration
	retries    int           // non-stream requests: extra attempts on 429/503
	backoff    time.Duration // first retry's backoff (doubles, capped, jittered)
	sseRetries int           // Events: reconnect attempts after a broken stream
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports). The default client has no global timeout — event streams
// are long-lived — so bound calls with the context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval sets Wait's status poll interval (default 50ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.poll = d }
}

// WithRetry sets how many times a non-stream request is retried after a
// retryable reply (429 queue-full, 503 draining) and the first retry's
// backoff. The wait honors the server's Retry-After hint when it gives
// one, otherwise doubles from base (capped at maxRetryBackoff) with
// jitter. WithRetry(0, 0) disables retries — tests asserting on raw
// backpressure replies want that. Defaults: 3 retries, 50ms base.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) {
		if max < 0 {
			max = 0
		}
		c.retries = max
		if base > 0 {
			c.backoff = base
		}
	}
}

// WithSSEReconnect sets how many times Events re-dials a broken event
// stream (transport error or truncation before the terminal end frame),
// resuming past the last-seen event via Last-Event-ID. 0 disables
// reconnection. Default: 3.
func WithSSEReconnect(max int) Option {
	return func(c *Client) {
		if max < 0 {
			max = 0
		}
		c.sseRetries = max
	}
}

// New builds a client for the server at base (e.g. "http://host:8372").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{},
		poll:       50 * time.Millisecond,
		retries:    3,
		backoff:    50 * time.Millisecond,
		sseRetries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// maxRetryBackoff caps the doubling retry backoff.
const maxRetryBackoff = 2 * time.Second

// defaultRetryAfterHint stands in for a missing or unparseable
// Retry-After header on a 429/503 reply: back off a little instead of
// hammering an overloaded server with zero delay.
const defaultRetryAfterHint = 250 * time.Millisecond

// do issues one request, retrying retryable server replies (429/503) up
// to c.retries times. The body is kept as bytes so every attempt
// resends it from the start.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil || attempt >= c.retries || !retryableReply(err) || ctx.Err() != nil {
			return err
		}
		wait := backoff
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			wait = ae.RetryAfter
		}
		if err := sleepCtx(ctx, jitter(wait)); err != nil {
			return err
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryableReply reports whether err is a server reply worth retrying:
// 429 (queue full) and 503 (draining) are load conditions that clear;
// everything else — 4xx misuse, transport failures — is not retried
// here (transport-level resilience belongs to the caller's *http.Client).
func retryableReply(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.StatusCode == http.StatusTooManyRequests ||
		ae.StatusCode == http.StatusServiceUnavailable
}

// jitter spreads a wait by up to +25% so synchronized clients desync.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func decodeError(resp *http.Response) error {
	ae := &APIError{
		StatusCode: resp.StatusCode,
		RetryAfter: parseRetryAfter(resp),
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); err == nil && body.Error != "" {
		ae.Message = body.Error
	} else {
		ae.Message = resp.Status
	}
	return ae
}

// parseRetryAfter reads the reply's Retry-After header in both RFC 9110
// forms — delta-seconds and HTTP-date — clamping negatives (a date in
// the past, a bogus delta) to zero. A 429/503 without a usable header
// still yields defaultRetryAfterHint, never zero: "retry immediately"
// is the one hint an overloaded server cannot mean.
func parseRetryAfter(resp *http.Response) time.Duration {
	throttled := resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable
	if ra := strings.TrimSpace(resp.Header.Get("Retry-After")); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			if secs > 0 {
				return time.Duration(secs) * time.Second
			}
		} else if at, err := http.ParseTime(ra); err == nil {
			if d := time.Until(at); d > 0 {
				return d
			}
		}
		// Parsed to "now or past", or unparseable: fall through to the
		// status-code default.
	}
	if throttled {
		return defaultRetryAfterHint
	}
	return 0
}

// Submit validates and enqueues spec on the server, returning the queued
// (or, for a report-cache hit, already completed) job. Backpressure is
// retried per WithRetry; once the budget is exhausted it surfaces as an
// *APIError with StatusCode 429 — see IsQueueFull.
func (c *Client) Submit(ctx context.Context, spec eda.Spec) (*Job, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encoding spec: %w", err)
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", b, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Cancel requests cancellation and returns the job's status at that
// moment (a running job may still read "running" until its context
// cancellation lands; poll or Wait for the terminal state).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-t.C:
		}
	}
}

// Stats fetches the server's queue/cache statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches GET /v1/metrics verbatim: the server's full telemetry
// surface in Prometheus text exposition format. Left as text on purpose
// — the caller is a scraper (or the load harness checking the endpoint
// answers), not a JSON consumer.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// errBadFrame marks a malformed SSE event frame — a protocol error, not
// a transport flake, so Events does not reconnect over it.
var errBadFrame = errors.New("client: bad event frame")

// Events streams the job's events into sink until the server's terminal
// "end" frame (returning the job's final status), the stream fails for
// good, or ctx is cancelled. A late subscriber replays the job's
// retained history first, so Events after completion still yields the
// full stream.
//
// A stream broken before the end frame — transport reset, truncation, a
// proxy dropping the connection — is re-dialed up to WithSSEReconnect
// times, resuming just past the last event seen by sending its sequence
// number as Last-Event-ID. The server replays from there and any frames
// it resends anyway (seq at or below the last seen) are dropped here,
// so the sink observes each event exactly once across reconnects.
// Non-2xx replies and malformed frames are not reconnected over.
func (c *Client) Events(ctx context.Context, id string, sink eda.Sink) (*Job, error) {
	var lastSeq uint64
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		final, err := c.eventsOnce(ctx, id, sink, &lastSeq)
		if err == nil {
			return final, nil
		}
		var ae *APIError
		if errors.As(err, &ae) || errors.Is(err, errBadFrame) ||
			ctx.Err() != nil || attempt >= c.sseRetries {
			return nil, err
		}
		if serr := sleepCtx(ctx, jitter(backoff)); serr != nil {
			return nil, err
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
}

// eventsOnce runs one SSE connection. *lastSeq carries resume state
// across attempts: it is sent as Last-Event-ID when non-zero, advanced
// as "id:" lines arrive, and any event frame whose sequence number is
// at or below it is a replay duplicate and skipped.
func (c *Client) eventsOnce(ctx context.Context, id string, sink eda.Sink, lastSeq *uint64) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastSeq, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}

	var name string
	var seq uint64
	var data bytes.Buffer
	var final *Job
	dispatch := func() error {
		defer func() { name = ""; seq = 0; data.Reset() }()
		if data.Len() == 0 {
			return nil
		}
		if name == "end" {
			final = &Job{}
			return json.Unmarshal(data.Bytes(), final)
		}
		if seq > 0 {
			if seq <= *lastSeq {
				return nil // replayed duplicate from a resume
			}
			*lastSeq = seq
		}
		var ev eda.Event
		if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
			return fmt.Errorf("%w: %v", errBadFrame, err)
		}
		if sink != nil {
			sink.Emit(ev)
		}
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxSSELine)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return nil, err
			}
			if final != nil {
				return final, nil
			}
		case strings.HasPrefix(line, "id:"):
			seq, _ = strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, "id:")), 10, 64)
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case strings.HasPrefix(line, ":"):
			// comment frame (e.g. replay-buffer eviction notice)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// maxSSELine bounds one SSE line; event frames embed report summaries and
// tool feedback heads, not whole sources, so 4 MB is generous.
const maxSSELine = 4 << 20
