// Package client is the typed HTTP client for the llm4eda job service
// (`llm4eda serve`, package internal/edaserver). It speaks the /v1 wire
// protocol: submit an eda.Spec as a job, poll or wait for its report,
// stream its progress events (the same core event vocabulary every local
// eda.Run emits) over Server-Sent Events, cancel it, and read the
// server's queue/cache statistics.
//
//	c := client.New("http://127.0.0.1:8372")
//	job, err := c.Submit(ctx, eda.Spec{Framework: "vrank", Problem: "mux4"})
//	err = c.Events(ctx, job.ID, eda.ProgressPrinter(os.Stdout, false))
//	job, err = c.Wait(ctx, job.ID)
//	report, err := job.DecodeReport()
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/simfarm"
)

// Job mirrors the server's job status wire form.
type Job struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Created is the server-side submission time (RFC 3339).
	Created string `json:"created"`
	// Report is the raw shared-wire-format report ((*eda.Report).JSON)
	// once the job produced one; DecodeReport types it.
	Report json.RawMessage `json:"report,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// Report is the shared report wire format — the exact type the server
// encodes ((*eda.Report).JSON), so server and client can never drift.
// Detail stays raw: callers that need the framework-native result decode
// it against that framework's result struct.
type Report = eda.ReportWire

// DecodeReport decodes the job's report, or fails when none is attached
// yet.
func (j *Job) DecodeReport() (*Report, error) {
	if len(j.Report) == 0 {
		return nil, fmt.Errorf("client: job %s (%s) carries no report", j.ID, j.State)
	}
	var r Report
	if err := json.Unmarshal(j.Report, &r); err != nil {
		return nil, fmt.Errorf("client: decoding job %s report: %w", j.ID, err)
	}
	return &r, nil
}

// FarmStats is the simulation farm's per-layer traffic as the server
// reports it (the same type the eda.ReportWire carries as Cache).
type FarmStats = simfarm.FarmStats

// Stats mirrors the server's /v1/stats reply.
type Stats struct {
	Workers     int            `json:"workers"`
	QueueDepth  int            `json:"queue_depth"`
	Draining    bool           `json:"draining,omitempty"`
	JobStates   map[string]int `json:"job_states"`
	Submitted   uint64         `json:"submitted"`
	Completed   uint64         `json:"completed"`
	Failed      uint64         `json:"failed"`
	Cancelled   uint64         `json:"cancelled"`
	Rejected    uint64         `json:"rejected"`
	ReportCache struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Len    int    `json:"len"`
	} `json:"report_cache"`
	Farm FarmStats `json:"farm"`
}

// APIError is a non-2xx server reply.
type APIError struct {
	StatusCode int
	// RetryAfter is the parsed Retry-After hint on 429 replies (zero
	// otherwise).
	RetryAfter time.Duration
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server replied %d: %s", e.StatusCode, e.Message)
}

// IsQueueFull reports whether err is the server's 429 backpressure reply.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// Client talks to one server.
type Client struct {
	base string
	hc   *http.Client
	poll time.Duration
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports). The default client has no global timeout — event streams
// are long-lived — so bound calls with the context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval sets Wait's status poll interval (default 50ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.poll = d }
}

// New builds a client for the server at base (e.g. "http://host:8372").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{},
		poll: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	ae := &APIError{StatusCode: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); err == nil && body.Error != "" {
		ae.Message = body.Error
	} else {
		ae.Message = resp.Status
	}
	return ae
}

// Submit validates and enqueues spec on the server, returning the queued
// (or, for a report-cache hit, already completed) job. Backpressure
// surfaces as an *APIError with StatusCode 429 — see IsQueueFull.
func (c *Client) Submit(ctx context.Context, spec eda.Spec) (*Job, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encoding spec: %w", err)
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(b), &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Cancel requests cancellation and returns the job's status at that
// moment (a running job may still read "running" until its context
// cancellation lands; poll or Wait for the terminal state).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		job, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-t.C:
		}
	}
}

// Stats fetches the server's queue/cache statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events streams the job's events into sink until the server's terminal
// "end" frame (returning the job's final status), the stream ends, or ctx
// is cancelled. A late subscriber replays the job's retained history
// first, so Events after completion still yields the full stream.
func (c *Client) Events(ctx context.Context, id string, sink eda.Sink) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}

	var name string
	var data bytes.Buffer
	var final *Job
	dispatch := func() error {
		defer func() { name = ""; data.Reset() }()
		if data.Len() == 0 {
			return nil
		}
		if name == "end" {
			final = &Job{}
			return json.Unmarshal(data.Bytes(), final)
		}
		var ev eda.Event
		if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: bad event frame: %w", err)
		}
		if sink != nil {
			sink.Emit(ev)
		}
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxSSELine)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return nil, err
			}
			if final != nil {
				return final, nil
			}
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case strings.HasPrefix(line, ":"):
			// comment frame (e.g. replay-buffer eviction notice)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// maxSSELine bounds one SSE line; event frames embed report summaries and
// tool feedback heads, not whole sources, so 4 MB is generous.
const maxSSELine = 4 << 20
