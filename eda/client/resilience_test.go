package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/testutil"
)

func TestParseRetryAfter(t *testing.T) {
	resp := func(code int, header string) *http.Response {
		r := &http.Response{StatusCode: code, Header: http.Header{}}
		if header != "" {
			r.Header.Set("Retry-After", header)
		}
		return r
	}
	futureDate := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	pastDate := time.Now().Add(-30 * time.Second).UTC().Format(http.TimeFormat)

	t.Run("delta seconds", func(t *testing.T) {
		if got := parseRetryAfter(resp(429, "2")); got != 2*time.Second {
			t.Errorf("delta-seconds 2 = %v", got)
		}
	})
	t.Run("http date", func(t *testing.T) {
		got := parseRetryAfter(resp(429, futureDate))
		if got <= 25*time.Second || got > 31*time.Second {
			t.Errorf("HTTP-date +30s = %v", got)
		}
	})
	t.Run("past date clamps to default hint", func(t *testing.T) {
		if got := parseRetryAfter(resp(429, pastDate)); got != defaultRetryAfterHint {
			t.Errorf("past HTTP-date = %v, want default hint", got)
		}
	})
	t.Run("missing header on 429 defaults", func(t *testing.T) {
		if got := parseRetryAfter(resp(429, "")); got != defaultRetryAfterHint {
			t.Errorf("missing header = %v, want %v", got, defaultRetryAfterHint)
		}
	})
	t.Run("garbage on 503 defaults", func(t *testing.T) {
		if got := parseRetryAfter(resp(503, "soon-ish")); got != defaultRetryAfterHint {
			t.Errorf("garbage header = %v, want %v", got, defaultRetryAfterHint)
		}
	})
	t.Run("zero delta means default hint, not hammering", func(t *testing.T) {
		if got := parseRetryAfter(resp(429, "0")); got != defaultRetryAfterHint {
			t.Errorf("zero delta = %v, want default hint", got)
		}
	})
	t.Run("other status codes stay zero", func(t *testing.T) {
		if got := parseRetryAfter(resp(400, "")); got != 0 {
			t.Errorf("400 = %v, want 0", got)
		}
	})
}

// TestSubmitRetriesBackpressure: a 429 reply is retried with the full
// body resent, and the retry succeeds once the queue drains.
func TestSubmitRetriesBackpressure(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if r.ContentLength <= 0 {
			t.Errorf("attempt %d arrived without a body", n)
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "0") // parses to the default hint
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full, retry later"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j1","state":"queued","created":"2026-01-01T00:00:00.000Z"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	job, err := c.Submit(context.Background(), eda.Spec{Framework: "vrank", Problem: "mux4"})
	if err != nil {
		t.Fatalf("Submit after two 429s: %v", err)
	}
	if job.ID != "j1" || calls.Load() != 3 {
		t.Errorf("job=%+v calls=%d, want j1 after 3 attempts", job, calls.Load())
	}
}

// TestSubmitRetryBudgetExhausted: with retries disabled the first 429
// surfaces unchanged (the contract backpressure tests rely on), and the
// hint is never zero.
func TestSubmitRetryBudgetExhausted(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"job queue full, retry later"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(0, 0))
	_, err := c.Submit(context.Background(), eda.Spec{Framework: "vrank", Problem: "mux4"})
	if !IsQueueFull(err) {
		t.Fatalf("err = %v, want queue-full APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want exactly 1 with retries disabled", calls.Load())
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Errorf("RetryAfter hint = %v, want > 0", ae.RetryAfter)
	}
}

// TestEventsReconnectResumes: the server drops the stream mid-job; the
// client re-dials with Last-Event-ID, the server replays an overlapping
// frame, and the sink still sees each event exactly once.
func TestEventsReconnectResumes(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	frame := func(seq int, detail string) string {
		return fmt.Sprintf("id: %d\nevent: note\ndata: {\"kind\":\"note\",\"detail\":%q}\n\n", seq, detail)
	}
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Error("first connection sent a Last-Event-ID")
			}
			// Two events, then the connection dies without an end frame.
			fmt.Fprint(w, frame(1, "one")+frame(2, "two"))
		default:
			if got := r.Header.Get("Last-Event-ID"); got != "2" {
				t.Errorf("resume sent Last-Event-ID %q, want \"2\"", got)
			}
			// Replay overlaps by one frame — the client must dedup seq 2.
			fmt.Fprint(w, frame(2, "two")+frame(3, "three"))
			fmt.Fprint(w, "event: end\ndata: {\"id\":\"j9\",\"state\":\"done\",\"events_dropped\":1}\n\n")
		}
	}))
	defer ts.Close()

	var mu sync.Mutex
	var got []string
	final, err := New(ts.URL, WithRetry(0, time.Millisecond), WithSSEReconnect(2)).
		Events(context.Background(), "j9",
			eda.SinkFunc(func(ev eda.Event) {
				mu.Lock()
				got = append(got, ev.Detail)
				mu.Unlock()
			}))
	if err != nil {
		t.Fatalf("Events across a dropped stream: %v", err)
	}
	if final.State != "done" || final.EventsDropped != 1 {
		t.Errorf("final = %+v, want done with events_dropped 1", final)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Errorf("events = %q, want exactly one/two/three", got)
	}
	if conns.Load() != 2 {
		t.Errorf("connections = %d, want 2", conns.Load())
	}
}

// TestEventsNoReconnectOnAPIError: a 404 is a caller mistake, not a
// broken stream — one attempt only.
func TestEventsNoReconnectOnAPIError(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithSSEReconnect(3)).Events(context.Background(), "nope", nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no reconnect on API errors)", calls.Load())
	}
}

// TestEventsReconnectBudgetExhausted: a stream that always truncates
// eventually surfaces the truncation error.
func TestEventsReconnectBudgetExhausted(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: note\ndata: {\"kind\":\"note\"}\n\n")
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetry(0, time.Millisecond), WithSSEReconnect(2)).
		Events(context.Background(), "j1", nil)
	if err == nil {
		t.Fatal("expected truncation error after exhausting reconnects")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 1 + 2 reconnects", calls.Load())
	}
}
