package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"llm4eda/eda"
)

func TestJobTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		"queued": false, "running": false,
		"done": true, "failed": true, "cancelled": true,
	} {
		if got := (&Job{State: state}).Terminal(); got != want {
			t.Errorf("Terminal(%q) = %v", state, got)
		}
	}
}

func TestDecodeReport(t *testing.T) {
	j := &Job{ID: "j1", State: "running"}
	if _, err := j.DecodeReport(); err == nil {
		t.Error("expected error for report-less job")
	}
	j.Report = json.RawMessage(`{"framework":"vrank","ok":true,"summary":"s","metrics":{"total":1}}`)
	r, err := j.DecodeReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.Framework != "vrank" || !r.OK || r.Metrics["total"] != 1 {
		t.Errorf("decoded report = %+v", r)
	}
	j.Report = json.RawMessage(`{`)
	if _, err := j.DecodeReport(); err == nil {
		t.Error("expected error for malformed report")
	}
}

// TestEventsParsesSSE drives the SSE reader over a hand-written stream:
// comment frames are skipped, event frames land in the sink in order,
// and the end frame yields the terminal job status.
func TestEventsParsesSSE(t *testing.T) {
	const stream = ": 2 earlier events evicted from the replay buffer\n\n" +
		"event: run-start\ndata: {\"kind\":\"run-start\",\"framework\":\"vrank\"}\n\n" +
		"event: note\ndata: {\"kind\":\"note\",\"detail\":\"working\"}\n\n" +
		"event: end\ndata: {\"id\":\"j7\",\"state\":\"done\",\"cached\":true}\n\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j7/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte(stream))
	}))
	defer ts.Close()

	var got []eda.Event
	final, err := New(ts.URL).Events(context.Background(), "j7",
		eda.SinkFunc(func(ev eda.Event) { got = append(got, ev) }))
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if final.ID != "j7" || final.State != "done" || !final.Cached {
		t.Errorf("final = %+v", final)
	}
	if len(got) != 2 || got[0].Kind != eda.EventRunStart || got[1].Detail != "working" {
		t.Errorf("events = %+v", got)
	}

	// A stream that ends without the end frame is a truncation error.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte("event: note\ndata: {\"kind\":\"note\"}\n\n"))
	}))
	defer ts2.Close()
	if _, err := New(ts2.URL).Events(context.Background(), "j7", nil); err == nil {
		t.Error("expected error for truncated stream")
	}
}
