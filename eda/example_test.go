package eda_test

import (
	"context"
	"fmt"

	"llm4eda/eda"
)

// ExampleRun drives the AutoChip framework on one benchmark problem
// through the unified front door: a Spec in, a uniform Report out. The
// same call shape reaches all nine frameworks — swap Framework and the
// knobs in Params.
func ExampleRun() {
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "autochip",
		Problem:   "and4",
		Run:       eda.RunSpec{Tier: "frontier", Seed: 2},
		Params:    map[string]float64{"k": 2, "depth": 2},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(report.Summary)
	fmt.Printf("solved=%v problems=%v\n", report.OK, report.Metrics["total"])
	// Output:
	// solved 1/1 problems with 2 candidates
	// solved=true problems=1
}
