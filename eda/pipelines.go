package eda

import (
	"context"
	"fmt"

	"llm4eda/internal/agent"
	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/boom"
	"llm4eda/internal/crosscheck"
	"llm4eda/internal/gp"
	"llm4eda/internal/hlstest"
	"llm4eda/internal/lintrepair"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
	"llm4eda/internal/repair"
	"llm4eda/internal/slt"
	"llm4eda/internal/vlint"
	"llm4eda/internal/vrank"
	"llm4eda/internal/xdebug"
)

// simModel builds the spec's simulated model (tier and seed both come
// from the shared envelope, already default-filled by Run).
func simModel(spec Spec) (llm.Model, error) {
	tier, err := llm.ParseTier(spec.Run.Tier)
	if err != nil {
		return nil, err
	}
	return llm.NewSimModel(tier, spec.Run.Seed), nil
}

// checkProblem is the payload check for the Verilog-generation
// pipelines: an empty problem (the default sweep) or one that exists in
// the benchmark suite, and no C-kernel payload fields.
func checkProblem(spec Spec) error {
	if spec.Problem != "" && benchset.ByID(spec.Problem) == nil {
		return fmt.Errorf("eda: unknown problem %q (try: llm4eda list)", spec.Problem)
	}
	if spec.Source != "" || spec.Kernel != "" || len(spec.Vectors) > 0 {
		return fmt.Errorf("eda: %s takes a Problem, not Source/Kernel/Vectors", spec.Framework)
	}
	return nil
}

// checkNoPayload is the payload check for the payload-free pipelines
// (slt, gp): any problem or kernel field is a caller mistake, not
// something to silently drop.
func checkNoPayload(spec Spec) error {
	if spec.Problem != "" {
		return fmt.Errorf("eda: %s does not take a Problem", spec.Framework)
	}
	if spec.Source != "" || spec.Kernel != "" || len(spec.Vectors) > 0 {
		return fmt.Errorf("eda: %s does not take Source/Kernel/Vectors", spec.Framework)
	}
	return nil
}

// problemSweep resolves the spec's problem list: the named problem, or
// the given default id sweep.
func problemSweep(spec Spec, defaults []string) []*benchset.Problem {
	if spec.Problem != "" {
		return []*benchset.Problem{benchset.ByID(spec.Problem)}
	}
	out := make([]*benchset.Problem, 0, len(defaults))
	for _, id := range defaults {
		out = append(out, benchset.ByID(id))
	}
	return out
}

func suiteIDs() []string {
	var ids []string
	for _, p := range benchset.Suite() {
		ids = append(ids, p.ID)
	}
	return ids
}

// The §V demo kernel the hlstest pipeline campaigns against when no
// Source is given (the same kernel experiment E3 uses).
const defaultHLSTestKernel = `
int scale(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        acc = acc + a * b + i;
    }
    return acc;
}`

// builtinPipelines returns the ten framework adapters behind the front
// door. Each one translates a Spec into the framework's native options
// (embedding the shared RunSpec), runs it under ctx, and folds the native
// result into a uniform Report with the result attached as Detail.
func builtinPipelines() []Pipeline {
	return []Pipeline{
		{
			Name:   "agent",
			Doc:    "full-flow EDA agent: spec -> verified, synthesized design (Fig. 6)",
			Params: []string{"debug_rounds"},
			Check:  checkProblem,
			Run:    runAgent,
		},
		{
			Name:   "autochip",
			Doc:    "feedback-driven Verilog generation with tree search (Fig. 4)",
			Params: []string{"k", "depth", "temperature"},
			Check:  checkProblem,
			Run:    runAutochip,
		},
		{
			Name:   "vrank",
			Doc:    "self-consistency candidate ranking on oracle-free stimuli (§II)",
			Params: []string{"k", "temperature"},
			Check:  checkProblem,
			Run:    runVRank,
		},
		{
			Name:   "crosscheck",
			Doc:    "C-model cross-level validation of RTL candidates (§VI)",
			Params: []string{"vectors"},
			Check:  checkProblem,
			Run:    runCrosscheck,
		},
		{
			Name:   "xdebug",
			Doc:    "cross-level C-vs-RTL trace alignment, divergence localization, guided repair (§VI)",
			Params: []string{"rounds", "vectors", "mutant", "temperature"},
			Check:  checkProblem,
			Run:    runXDebug,
		},
		{
			Name:   "lint",
			Doc:    "static lint screening of candidates with lint-guided repair (E12)",
			Params: []string{"rounds", "mutant", "temperature", "screen"},
			Check:  checkProblem,
			Run:    runLint,
		},
		{
			Name:   "repair",
			Doc:    "retrieval-augmented C/C++ repair for HLS (Fig. 2)",
			Params: []string{"iterations", "rag"},
			Check:  checkRepairPayload,
			Run:    runRepair,
		},
		{
			Name:   "hlstest",
			Doc:    "CPU-vs-RTL behavioral discrepancy testing (Fig. 3)",
			Params: []string{"width", "budget", "guided"},
			Check:  checkKernelPayload,
			Run:    runHLSTest,
		},
		{
			Name: "slt",
			Doc:  "LLM loop maximizing processor power via SLT programs (§V)",
			// The paper's §V loop drives a GPT-4-class model.
			DefaultTier: "large",
			Params:      []string{"evals", "scot", "adaptive", "diversity"},
			Check:       checkNoPayload,
			Run:         runSLT,
		},
		{
			Name:   "gp",
			Doc:    "genetic-programming baseline for the SLT power loop (§V)",
			Params: []string{"evals", "population"},
			Check:  checkNoPayload,
			Run:    runGP,
		},
	}
}

// checkKernelPayload is the payload check for the HLS pipelines: Source
// and Kernel set together (or neither, for the default sweep), and no
// benchmark Problem.
func checkKernelPayload(spec Spec) error {
	if spec.Source != "" && spec.Kernel == "" {
		return fmt.Errorf("eda: %s: Spec.Kernel must name the function when Source is set", spec.Framework)
	}
	if spec.Source == "" && spec.Kernel != "" {
		return fmt.Errorf("eda: %s: Spec.Source is required when Kernel is set", spec.Framework)
	}
	if spec.Problem != "" {
		return fmt.Errorf("eda: %s takes Source/Kernel, not a Problem", spec.Framework)
	}
	return nil
}

// checkRepairPayload additionally rejects Vectors without a Source: the
// default benchmark sweep carries its own equivalence vectors, so
// caller-supplied ones would be silently dropped. (hlstest differs: its
// Vectors seed the default kernel's campaign and are honored alone.)
func checkRepairPayload(spec Spec) error {
	if err := checkKernelPayload(spec); err != nil {
		return err
	}
	if spec.Source == "" && len(spec.Vectors) > 0 {
		return fmt.Errorf("eda: repair: Spec.Vectors require Source/Kernel (the benchmark sweep has its own)")
	}
	return nil
}

func runAgent(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	a, err := agent.New(agent.Config{
		RunSpec: spec.Run, Model: model,
		MaxDebugRounds: int(spec.Param("debug_rounds", 0)),
	})
	if err != nil {
		return nil, err
	}
	problems := problemSweep(spec, []string{"adder4", "mux4", "counter8", "det101", "lfsr8"})
	reports, err := a.RunSuite(ctx, problems)
	rep := &Report{Detail: reports}
	passed := 0
	for _, r := range reports {
		if r.Verdict.Pass() {
			passed++
		}
	}
	rep.Metric("passed", float64(passed))
	rep.Metric("total", float64(len(problems)))
	rep.OK = err == nil && passed == len(problems)
	rep.Summary = fmt.Sprintf("%d/%d designs verified end to end", passed, len(problems))
	return rep, err
}

func runAutochip(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	opts := autochip.Options{
		RunSpec: spec.Run, Model: model,
		K:           int(spec.Param("k", 3)),
		Depth:       int(spec.Param("depth", 3)),
		Temperature: spec.Param("temperature", 0),
	}
	problems := problemSweep(spec, suiteIDs())
	var results []*autochip.Result
	solved, candidates, tokensOut, retries := 0, 0, 0, 0
	for _, p := range problems {
		var res *autochip.Result
		err := runProblem(ctx, "autochip", p.ID, &retries, func() error {
			var rerr error
			res, rerr = autochip.Run(ctx, p, opts)
			return rerr
		})
		if res != nil {
			results = append(results, res)
			candidates += res.TotalCandidates
			tokensOut += res.TokensOut
			if res.Solved {
				solved++
			}
		}
		if err != nil {
			rep := autochipReport(results, solved, candidates, tokensOut, len(problems))
			setRetryMetric(rep, retries)
			return rep, err
		}
	}
	rep := autochipReport(results, solved, candidates, tokensOut, len(problems))
	setRetryMetric(rep, retries)
	return rep, nil
}

func autochipReport(results []*autochip.Result, solved, candidates, tokensOut, total int) *Report {
	rep := &Report{Detail: results}
	rep.Metric("solved", float64(solved))
	rep.Metric("total", float64(total))
	rep.Metric("candidates", float64(candidates))
	rep.Metric("tokens_out", float64(tokensOut))
	rep.OK = solved == total
	rep.Summary = fmt.Sprintf("solved %d/%d problems with %d candidates", solved, total, candidates)
	return rep
}

func runVRank(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	opts := vrank.Options{
		RunSpec: spec.Run, Model: model,
		K:           int(spec.Param("k", 5)),
		Temperature: spec.Param("temperature", 0),
	}
	problems := problemSweep(spec, []string{"alu8", "mux4", "enc8to3", "barrel8", "satadd8", "popcount8"})
	var results []*vrank.Result
	chosen, first, oracle, retries := 0, 0, 0, 0
	for _, p := range problems {
		var res *vrank.Result
		err := runProblem(ctx, "vrank", p.ID, &retries, func() error {
			var rerr error
			res, rerr = vrank.Rank(ctx, p, opts)
			return rerr
		})
		if res != nil {
			results = append(results, res)
			if res.ChosenPasses {
				chosen++
			}
			if res.FirstPasses {
				first++
			}
			if res.AnyPasses {
				oracle++
			}
		}
		if err != nil {
			rep := vrankReport(results, chosen, first, oracle, len(problems))
			setRetryMetric(rep, retries)
			return rep, err
		}
	}
	rep := vrankReport(results, chosen, first, oracle, len(problems))
	setRetryMetric(rep, retries)
	return rep, nil
}

func vrankReport(results []*vrank.Result, chosen, first, oracle, total int) *Report {
	rep := &Report{Detail: results}
	rep.Metric("chosen_pass", float64(chosen))
	rep.Metric("first_pass", float64(first))
	rep.Metric("oracle_pass", float64(oracle))
	rep.Metric("total", float64(total))
	rep.OK = chosen >= first && total > 0
	rep.Summary = fmt.Sprintf("self-consistency picked a passing design on %d/%d problems (first-sample %d, oracle %d)",
		chosen, total, first, oracle)
	return rep
}

func runCrosscheck(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	var problems []*benchset.Problem
	if spec.Problem != "" {
		problems = []*benchset.Problem{benchset.ByID(spec.Problem)}
	} else {
		for _, p := range benchset.Suite() {
			if p.CModel != "" && len(p.Ports) > 0 {
				problems = append(problems, p)
			}
		}
	}
	nVectors := int(spec.Param("vectors", 32))
	var results []*crosscheck.Result
	clean, retries := 0, 0
	report := func() *Report {
		rep := &Report{Detail: results}
		rep.Metric("clean", float64(clean))
		rep.Metric("total", float64(len(problems)))
		rep.Metric("vectors", float64(nVectors))
		rep.OK = clean == len(problems)
		rep.Summary = fmt.Sprintf("%d/%d reference designs cross-level clean over %d vectors",
			clean, len(problems), nVectors)
		setRetryMetric(rep, retries)
		return rep
	}
	for _, p := range problems {
		var res *crosscheck.Result
		err := runProblem(ctx, "crosscheck", p.ID, &retries, func() error {
			cm, gerr := crosscheck.GenerateModel(model, p)
			if gerr != nil {
				return gerr
			}
			var rerr error
			res, rerr = crosscheck.Validate(ctx, p.Reference, p, cm, nVectors)
			return rerr
		})
		if err != nil {
			// Partial report travels with the error (cancellation contract).
			return report(), fmt.Errorf("%s: %w", p.ID, err)
		}
		results = append(results, res)
		if res.Clean() {
			clean++
		}
	}
	return report(), nil
}

// xdebugCandidate builds the debug loop's starting candidate: with
// mutant > 0 a deterministic single-fault mutant of the reference
// (indexed by seed+mutant so seeds sweep the corpus), with mutant == 0 a
// model-generated design. Problems whose reference admits no mutants
// (e.g. a single unary assign) fall back to the reference itself.
// Returns the candidate and the injected fault line (0 = none).
func xdebugCandidate(p *benchset.Problem, model llm.Model, seed uint64, mutant int) (string, int) {
	if mutant > 0 {
		if ms := xdebug.Mutants(p.Reference); len(ms) > 0 {
			m := ms[(int(seed)+mutant-1)%len(ms)]
			return m.Source, m.Line
		}
		return p.Reference, 0
	}
	resp, err := model.Generate(llm.Request{
		System: llm.SystemVerilogDesigner,
		Prompt: llm.BuildDesignPrompt(p.Spec),
		Task: llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec,
			Reference: p.Reference, Difficulty: p.Difficulty},
	})
	if err != nil {
		return p.Reference, 0
	}
	return resp.Text, 0
}

func runXDebug(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	var problems []*benchset.Problem
	if spec.Problem != "" {
		problems = []*benchset.Problem{benchset.ByID(spec.Problem)}
	} else {
		for _, p := range benchset.Suite() {
			if p.CModel != "" && len(p.Ports) > 0 {
				problems = append(problems, p)
			}
		}
	}
	opts := xdebug.Options{
		RunSpec: spec.Run, Model: model,
		Rounds:      int(spec.Param("rounds", 6)),
		Vectors:     int(spec.Param("vectors", 24)),
		Temperature: spec.Param("temperature", 0),
	}
	mutant := int(spec.Param("mutant", 1))
	var results []*xdebug.Result
	converged, localized, injectedHit, rounds, retries := 0, 0, 0, 0, 0
	report := func() *Report {
		rep := &Report{Detail: results}
		rep.Metric("converged", float64(converged))
		rep.Metric("localized", float64(localized))
		rep.Metric("injected_hit", float64(injectedHit))
		rep.Metric("total", float64(len(problems)))
		rep.Metric("rounds", float64(rounds))
		rep.OK = converged == len(problems)
		rep.Summary = fmt.Sprintf("repaired %d/%d designs to trace-identical RTL in %d rounds (localized %d, injected-fault hits %d)",
			converged, len(problems), rounds, localized, injectedHit)
		setRetryMetric(rep, retries)
		return rep
	}
	for _, p := range problems {
		cand, inj := xdebugCandidate(p, model, spec.Run.Seed, mutant)
		var res *xdebug.Result
		err := runProblem(ctx, "xdebug", p.ID, &retries, func() error {
			var rerr error
			res, rerr = xdebug.Debug(ctx, p, cand, opts)
			return rerr
		})
		if res != nil {
			results = append(results, res)
			rounds += len(res.Rounds)
			if res.Converged {
				converged++
			}
			if res.Localized {
				localized++
			}
			if inj > 0 && len(res.Rounds) > 0 && res.Rounds[0].Diag != nil &&
				res.Rounds[0].Diag.SuspectLine == inj {
				injectedHit++
			}
		}
		if err != nil {
			// Partial report travels with the error (cancellation contract).
			return report(), fmt.Errorf("%s: %w", p.ID, err)
		}
	}
	return report(), nil
}

// lintCandidate builds the lint loop's starting candidate: with
// mutant > 0 a deterministic error-class lint mutant of the reference
// (indexed by seed+mutant so seeds sweep the corpus), with mutant == 0 a
// model-generated design. Problems whose reference admits no error-class
// mutant fall back to the reference itself. Returns the candidate and
// the injected mutant class ("" = none).
func lintCandidate(p *benchset.Problem, model llm.Model, seed uint64, mutant int) (string, string) {
	if mutant > 0 {
		var errs []vlint.Mutant
		for _, m := range vlint.Mutants(p.Reference) {
			if m.IsErrorClass() {
				errs = append(errs, m)
			}
		}
		if len(errs) > 0 {
			m := errs[(int(seed)+mutant-1)%len(errs)]
			return m.Source, m.Class
		}
		return p.Reference, ""
	}
	resp, err := model.Generate(llm.Request{
		System: llm.SystemVerilogDesigner,
		Prompt: llm.BuildDesignPrompt(p.Spec),
		Task: llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec,
			Reference: p.Reference, Difficulty: p.Difficulty},
	})
	if err != nil {
		return p.Reference, ""
	}
	return resp.Text, ""
}

func runLint(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	opts := lintrepair.Options{
		RunSpec: spec.Run, Model: model,
		Rounds:      int(spec.Param("rounds", 6)),
		Screen:      spec.Param("screen", 1) != 0,
		Temperature: spec.Param("temperature", 0),
	}
	mutant := int(spec.Param("mutant", 1))
	problems := problemSweep(spec, suiteIDs())
	var results []*lintrepair.Result
	detected, converged, injected, rejects, rounds, retries := 0, 0, 0, 0, 0, 0
	report := func() *Report {
		rep := &Report{Detail: results}
		rep.Metric("detected", float64(detected))
		rep.Metric("converged", float64(converged))
		rep.Metric("injected", float64(injected))
		rep.Metric("rejects", float64(rejects))
		rep.Metric("total", float64(len(problems)))
		rep.Metric("rounds", float64(rounds))
		rep.OK = converged == len(problems) && detected == injected
		rep.Summary = fmt.Sprintf("screen caught %d/%d injected lint faults pre-simulation; repaired %d/%d designs in %d rounds (%d rejects)",
			detected, injected, converged, len(problems), rounds, rejects)
		setRetryMetric(rep, retries)
		return rep
	}
	for _, p := range problems {
		cand, class := lintCandidate(p, model, spec.Run.Seed, mutant)
		var res *lintrepair.Result
		err := runProblem(ctx, "lint", p.ID, &retries, func() error {
			var rerr error
			res, rerr = lintrepair.Run(ctx, p, cand, opts)
			return rerr
		})
		if res != nil {
			results = append(results, res)
			rounds += len(res.Rounds)
			if class != "" {
				injected++
			}
			if res.Detected {
				detected++
			}
			if res.Converged {
				converged++
			}
			for _, r := range res.Rounds {
				if r.Rejected {
					rejects++
				}
			}
		}
		if err != nil {
			// Partial report travels with the error (cancellation contract).
			return report(), fmt.Errorf("%s: %w", p.ID, err)
		}
	}
	return report(), nil
}

func runRepair(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	cfg := repair.Config{
		RunSpec: spec.Run, Model: model,
		MaxIterations: int(spec.Param("iterations", 0)),
	}
	if spec.Param("rag", 1) != 0 {
		cfg.Library = rag.DefaultCorrectionLibrary()
	}
	fw := repair.New(cfg)

	type job struct {
		id      string
		source  string
		kernel  string
		vectors [][]int64
	}
	var jobs []job
	if spec.Source != "" {
		jobs = append(jobs, job{id: spec.Kernel, source: spec.Source, kernel: spec.Kernel, vectors: spec.Vectors})
	} else {
		for _, k := range repair.BenchKernels() {
			jobs = append(jobs, job{id: k.ID, source: k.Source, kernel: k.Kernel, vectors: k.Vectors})
		}
	}
	var results []*repair.Outcome
	repaired, iters, retries := 0, 0, 0
	report := func() *Report {
		rep := &Report{Detail: results}
		rep.Metric("repaired", float64(repaired))
		rep.Metric("total", float64(len(jobs)))
		rep.Metric("iterations", float64(iters))
		rep.OK = repaired == len(jobs)
		rep.Summary = fmt.Sprintf("repaired %d/%d kernels (rag=%v)", repaired, len(jobs), cfg.Library != nil)
		setRetryMetric(rep, retries)
		return rep
	}
	for _, j := range jobs {
		var out *repair.Outcome
		err := runProblem(ctx, "repair", j.id, &retries, func() error {
			var rerr error
			out, rerr = fw.Repair(ctx, j.source, j.kernel, j.vectors)
			return rerr
		})
		if out != nil {
			results = append(results, out)
			iters += out.Iterations
			if out.Success {
				repaired++
			}
		}
		if err != nil {
			// Partial report travels with the error (cancellation contract).
			return report(), fmt.Errorf("%s: %w", j.id, err)
		}
	}
	return report(), nil
}

func runHLSTest(ctx context.Context, spec Spec) (*Report, error) {
	source, kernel, seeds := spec.Source, spec.Kernel, spec.Vectors
	if source == "" {
		source, kernel = defaultHLSTestKernel, "scale"
		if len(seeds) == 0 {
			seeds = [][]int64{{1, 1}, {2, 3}}
		}
	}
	guided := spec.Param("guided", 1) != 0
	cfg := hlstest.Config{
		RunSpec:      spec.Run,
		WidthBits:    int(spec.Param("width", 16)),
		SimBudget:    int(spec.Param("budget", 40)),
		UseSpectra:   guided,
		UseFilter:    guided,
		UseReasoning: guided,
	}
	if guided {
		model, err := simModel(spec)
		if err != nil {
			return nil, err
		}
		cfg.Model = model
	}
	res, err := hlstest.Run(ctx, source, "", kernel, seeds, cfg)
	if res == nil {
		return nil, err
	}
	// A cancelled campaign still reports the inputs it got through.
	rep := &Report{Detail: res}
	rep.Metric("discrepancies", float64(len(res.Discrepancies)))
	rep.Metric("sims_run", float64(res.SimsRun))
	rep.Metric("sims_skipped", float64(res.SimsSkipped))
	rep.Metric("inputs", float64(res.InputsGenerated))
	rep.OK = err == nil
	rep.Summary = fmt.Sprintf("%d discrepancies in %d hardware sims (%d redundant skipped)",
		len(res.Discrepancies), res.SimsRun, res.SimsSkipped)
	return rep, err
}

func runSLT(ctx context.Context, spec Spec) (*Report, error) {
	model, err := simModel(spec)
	if err != nil {
		return nil, err
	}
	res, err := slt.Run(ctx, slt.Config{
		RunSpec: spec.Run, Model: model,
		UseSCoT:           spec.Param("scot", 1) != 0,
		AdaptiveTemp:      spec.Param("adaptive", 1) != 0,
		DiversityPressure: spec.Param("diversity", 1) != 0,
		MaxEvals:          int(spec.Param("evals", 150)),
		Boom:              boom.RunOptions{MaxInsts: 400_000},
	})
	if res == nil {
		return nil, err
	}
	rep := &Report{Detail: res}
	rep.Metric("best_watts", res.Best.Score)
	rep.Metric("evals", float64(res.Evals))
	rep.Metric("compile_fails", float64(res.CompileFails))
	rep.Metric("final_temp", res.FinalTemp)
	rep.OK = err == nil && res.Best.Score > 0
	rep.Summary = fmt.Sprintf("best %.3f W after %d snippets (%d compile failures)",
		res.Best.Score, res.Evals, res.CompileFails)
	return rep, err
}

func runGP(ctx context.Context, spec Spec) (*Report, error) {
	res, err := gp.Run(ctx, gp.Config{
		RunSpec:    spec.Run,
		MaxEvals:   int(spec.Param("evals", 300)),
		Population: int(spec.Param("population", 0)),
		Boom:       boom.RunOptions{MaxInsts: 400_000},
	})
	if res == nil {
		return nil, err
	}
	rep := &Report{Detail: res}
	rep.Metric("best_watts", res.Best.Score)
	rep.Metric("evals", float64(res.Evals))
	rep.OK = err == nil && res.Best.Score > 0
	rep.Summary = fmt.Sprintf("best %.3f W after %d evaluations", res.Best.Score, res.Evals)
	return rep, err
}
