package eda_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/autochip"
	"llm4eda/internal/core"
	"llm4eda/internal/slt"
)

// quickSpecs returns one minimal-budget spec per registered framework —
// the acceptance matrix proving all nine are invocable through the
// front door.
func quickSpecs() map[string]eda.Spec {
	return map[string]eda.Spec{
		"agent": {Framework: "agent", Problem: "adder4"},
		"autochip": {Framework: "autochip", Problem: "and4",
			Params: map[string]float64{"k": 2, "depth": 2}},
		"vrank": {Framework: "vrank", Problem: "mux4",
			Params: map[string]float64{"k": 3}},
		"crosscheck": {Framework: "crosscheck", Problem: "adder4",
			Params: map[string]float64{"vectors": 8}},
		"xdebug": {Framework: "xdebug", Problem: "mux2",
			Params: map[string]float64{"vectors": 8, "rounds": 4}},
		"lint": {Framework: "lint", Problem: "alu8",
			Params: map[string]float64{"rounds": 6}},
		"repair": {Framework: "repair"},
		"hlstest": {Framework: "hlstest",
			Params: map[string]float64{"budget": 10}},
		"slt": {Framework: "slt", Run: eda.RunSpec{Tier: "large"},
			Params: map[string]float64{"evals": 4}},
		"gp": {Framework: "gp",
			Params: map[string]float64{"evals": 12, "population": 8}},
	}
}

// TestEveryFrameworkInvocable drives all ten frameworks through
// eda.Run and asserts the uniform contract: a report with a summary and
// metrics, and an event stream bracketed by run-start/run-end that
// carries the per-cache counters.
func TestEveryFrameworkInvocable(t *testing.T) {
	specs := quickSpecs()
	if got, want := len(specs), len(eda.Frameworks()); got != want {
		t.Fatalf("spec matrix covers %d frameworks, registry has %d (%v)",
			got, want, eda.Frameworks())
	}
	for _, fw := range eda.Frameworks() {
		fw := fw
		t.Run(fw, func(t *testing.T) {
			spec, ok := specs[fw]
			if !ok {
				t.Fatalf("no quick spec for %q", fw)
			}
			sink := eda.NewCountingSink()
			report, err := eda.Run(context.Background(), spec, eda.WithSink(sink))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if report == nil {
				t.Fatal("nil report")
			}
			if report.Framework != fw {
				t.Errorf("report.Framework = %q", report.Framework)
			}
			if report.Summary == "" {
				t.Error("empty summary")
			}
			if len(report.Metrics) == 0 {
				t.Error("no metrics")
			}
			if report.Detail == nil {
				t.Error("no native detail")
			}
			if report.Spec.Run.Seed == 0 || report.Spec.Run.Tier == "" {
				t.Errorf("defaults not filled: %+v", report.Spec.Run)
			}
			if n := sink.Count(eda.EventRunStart); n != 1 {
				t.Errorf("run-start events = %d", n)
			}
			if n := sink.Count(eda.EventRunEnd); n != 1 {
				t.Errorf("run-end events = %d", n)
			}
			if n := sink.Count(eda.EventCache); n != 4 {
				t.Errorf("cache events = %d, want 4 (parse/design/result/lint)", n)
			}
			if !strings.Contains(report.Render(), fw) {
				t.Errorf("render lacks framework name: %s", report.Render())
			}
		})
	}
}

// TestFrameworkEventsFlow asserts the framework-level stream reaches the
// front-door sink: an autochip run must emit phases, candidates and LLM
// calls, and the counts must line up with the native result.
func TestFrameworkEventsFlow(t *testing.T) {
	sink := eda.NewCountingSink()
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "autochip", Problem: "and4",
		Params: map[string]float64{"k": 2, "depth": 3},
	}, eda.WithSink(sink))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := report.Detail.([]*autochip.Result)[0]
	if n := sink.Count(eda.EventLLMCall); n != res.TotalCandidates {
		t.Errorf("llm-call events = %d, candidates = %d", n, res.TotalCandidates)
	}
	if n := sink.Count(eda.EventCandidate); n != res.TotalCandidates {
		t.Errorf("candidate events = %d, candidates = %d", n, res.TotalCandidates)
	}
	if sink.Count(eda.EventPhaseStart) != res.Rounds {
		t.Errorf("phase-start events = %d, rounds = %d",
			sink.Count(eda.EventPhaseStart), res.Rounds)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		spec eda.Spec
		want string
	}{
		{"empty", eda.Spec{}, "Framework is required"},
		{"unknown framework", eda.Spec{Framework: "nope"}, "unknown framework"},
		{"unknown param", eda.Spec{Framework: "slt", Params: map[string]float64{"bogus": 1}}, "does not take param"},
		{"bad tier", eda.Spec{Framework: "slt", Run: eda.RunSpec{Tier: "gpt9"}}, "unknown tier"},
		{"negative workers", eda.Spec{Framework: "slt", Run: eda.RunSpec{Workers: -1}}, "Workers"},
		{"negative deadline", eda.Spec{Framework: "slt", Run: eda.RunSpec{Deadline: -time.Second}}, "Deadline"},
		{"unknown problem", eda.Spec{Framework: "autochip", Problem: "nope"}, "unknown problem"},
		{"kernel without source", eda.Spec{Framework: "repair", Kernel: "f"}, "Source is required"},
		{"source without kernel", eda.Spec{Framework: "hlstest", Source: "int f() { return 0; }"}, "Kernel must name"},
		{"problem on slt", eda.Spec{Framework: "slt", Problem: "adder4"}, "does not take a Problem"},
		{"problem on repair", eda.Spec{Framework: "repair", Problem: "adder4"}, "not a Problem"},
		{"kernel payload on autochip", eda.Spec{Framework: "autochip", Problem: "and4",
			Source: "int f() { return 0; }", Kernel: "f"}, "not Source/Kernel/Vectors"},
		{"vectors without source on repair", eda.Spec{Framework: "repair",
			Vectors: [][]int64{{5}}}, "Vectors require Source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := eda.Run(context.Background(), tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDeadlineCancelsLongLoop is the front-door cancellation proof: an
// over-budget SLT loop under a tight deadline must stop promptly — well
// before its thousands of evaluations could finish — and surface
// context.DeadlineExceeded, with the partial result still attached.
func TestDeadlineCancelsLongLoop(t *testing.T) {
	start := time.Now()
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "slt",
		Params:    map[string]float64{"evals": 100000},
	}, eda.WithTimeout(300*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("run returned after %v despite 300ms deadline", elapsed)
	}
	if report == nil {
		t.Fatal("no partial report on cancellation")
	}
	res := report.Detail.(*slt.Result)
	if res.Evals >= 100000 {
		t.Errorf("loop ran to completion: %d evals", res.Evals)
	}
}

// TestExplicitCancelMidRun cancels an in-flight agent sweep and asserts
// prompt ctx.Err() propagation. The cancel fires synchronously from the
// event sink on the first event — events are emitted inline from the run,
// so the context is guaranteed canceled while the sweep still has work
// left (racing an async cancel against the sweep went flaky once the
// kernel overhaul made the whole sweep finish in tens of milliseconds).
func TestExplicitCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sink := eda.SinkFunc(func(ev eda.Event) {
		once.Do(cancel) // first event: the run is in flight
	})
	done := make(chan error, 1)
	go func() {
		_, err := eda.Run(ctx, eda.Spec{Framework: "agent"}, eda.WithSink(sink))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

func TestRegistry(t *testing.T) {
	reg := eda.NewRegistry()
	run := func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
		return &eda.Report{OK: true, Summary: "custom"}, nil
	}
	if err := reg.Register(eda.Pipeline{Name: "custom", Run: run}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register(eda.Pipeline{Name: "custom", Run: run}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register(eda.Pipeline{Name: "", Run: run}); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register(eda.Pipeline{Name: "norun"}); err == nil {
		t.Error("nil Run accepted")
	}
	if _, ok := reg.Lookup("custom"); !ok {
		t.Error("lookup failed")
	}
	report, err := eda.Run(context.Background(), eda.Spec{Framework: "custom"},
		eda.WithRegistry(reg))
	if err != nil || !report.OK {
		t.Errorf("custom pipeline run: %v %+v", err, report)
	}

	// The default registry holds exactly the ten paper frameworks.
	want := []string{"agent", "autochip", "crosscheck", "gp", "hlstest", "lint", "repair", "slt", "vrank", "xdebug"}
	got := eda.Frameworks()
	if len(got) != len(want) {
		t.Fatalf("Frameworks() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Frameworks()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDeterministicAcrossWorkerCounts pins the engine guarantee at the
// API layer: the same spec at workers=1 and workers=8 yields identical
// metrics.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := eda.Spec{Framework: "vrank", Problem: "alu8",
		Run:    eda.RunSpec{Tier: "medium", Seed: 5},
		Params: map[string]float64{"k": 5}}
	a, err := eda.Run(context.Background(), spec, eda.WithWorkers(1))
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	b, err := eda.Run(context.Background(), spec, eda.WithWorkers(8))
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s: %g (1 worker) vs %g (8 workers)", k, v, b.Metrics[k])
		}
	}
}

// TestSLTDefaultTierIsLarge pins the pipeline-level tier default: the
// §V loop is the paper's GPT-4-class setup, so an unspecified tier must
// resolve to "large" (not the global "frontier" default), matching the
// pre-redesign CLI behavior.
func TestSLTDefaultTierIsLarge(t *testing.T) {
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "slt", Params: map[string]float64{"evals": 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Spec.Run.Tier != "large" {
		t.Errorf("slt default tier = %q, want large", report.Spec.Run.Tier)
	}
	// An explicit tier still wins.
	report, err = eda.Run(context.Background(), eda.Spec{
		Framework: "slt", Run: eda.RunSpec{Tier: "small"},
		Params: map[string]float64{"evals": 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Spec.Run.Tier != "small" {
		t.Errorf("explicit tier clobbered: %q", report.Spec.Run.Tier)
	}
}

// TestRepairPartialReportOnCancel: sweep pipelines honor the documented
// contract of returning the partial Report alongside the cancellation
// error.
func TestRepairPartialReportOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := eda.Run(ctx, eda.Spec{Framework: "repair"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report == nil {
		t.Fatal("no partial report on cancellation")
	}
	if report.Metrics["total"] == 0 {
		t.Errorf("partial report lost its metrics: %+v", report.Metrics)
	}
}

// TestPreCancelledLoopsDoNoScoring: the slt seed pool and the gp initial
// population — the batch work before each main loop — must also respect
// a context that is dead on arrival, and a cancelled run must never
// render as OK.
func TestPreCancelledLoopsDoNoScoring(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, fw := range []string{"slt", "gp"} {
		report, err := eda.Run(ctx, eda.Spec{Framework: fw})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", fw, err)
		}
		if report == nil {
			t.Errorf("%s: no partial report", fw)
			continue
		}
		if report.OK {
			t.Errorf("%s: cancelled run reported OK", fw)
		}
		if report.Metrics["evals"] != 0 {
			t.Errorf("%s: %g evals ran under a dead context", fw, report.Metrics["evals"])
		}
	}
}

// TestRunSpecDefaults covers the shared envelope helpers directly.
func TestRunSpecDefaults(t *testing.T) {
	s := core.RunSpec{}.WithDefaults()
	if s.Seed != 1 || s.Tier != "frontier" {
		t.Errorf("defaults = %+v", s)
	}
	if err := (core.RunSpec{Tier: "large"}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestTierCaseInsensitive pins the CLI's historical behavior: mixed-case
// tier names normalize rather than fail.
func TestTierCaseInsensitive(t *testing.T) {
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "autochip", Problem: "and4",
		Run:    eda.RunSpec{Tier: "Frontier"},
		Params: map[string]float64{"k": 2, "depth": 1},
	})
	if err != nil {
		t.Fatalf("mixed-case tier rejected: %v", err)
	}
	if report.Spec.Run.Tier != "frontier" {
		t.Errorf("tier not normalized: %q", report.Spec.Run.Tier)
	}
}
