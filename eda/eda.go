// Package eda is the single front door to every LLM-for-EDA framework in
// the reproduction (the paper's Fig. 6 vision of one intelligent agent
// orchestrating all capabilities). Instead of nine bespoke entry points,
// callers describe what to run as an eda.Spec — a framework name, an
// optional problem/kernel payload and a shared core.RunSpec execution
// envelope — and call
//
//	report, err := eda.Run(ctx, spec, eda.WithSink(sink))
//
// Run resolves the framework in the Registry, derives a deadline from the
// spec, streams progress events (phases, scored candidates, LLM calls,
// simfarm cache traffic) to the sink, and returns a uniform Report with
// the framework-native result attached as Detail. Cancellation propagates
// end to end: the long framework loops check ctx between rounds and the
// simfarm worker pool aborts a batch within one simulation.
//
// The package is the substrate any serve/queue/sharding layer builds on:
// a Spec is serializable work, a Report is a serializable outcome, and
// the event stream is the progress channel between them.
package eda

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"llm4eda/internal/core"
	"llm4eda/internal/obs"
	"llm4eda/internal/simfarm"
)

// RunSpec is the shared execution envelope (seed, tier, workers,
// deadline) embedded in every framework's options; re-exported so
// front-door callers need only this package.
type RunSpec = core.RunSpec

// Spec describes one front-door run: which framework, on what payload,
// under which execution envelope. Exactly the fields a framework needs
// must be set; Validate rejects the rest. The json tags fix the wire form
// the edaserver service accepts at POST /v1/jobs.
type Spec struct {
	// Framework names the registered pipeline: one of Frameworks().
	Framework string `json:"framework"`
	// Run is the shared execution envelope. Zero values select defaults
	// (seed 1, frontier tier, GOMAXPROCS workers, no deadline).
	Run RunSpec `json:"run"`
	// Problem names a benchmark problem for the Verilog-generation
	// frameworks (autochip, vrank, crosscheck, agent). Empty selects the
	// framework's default sweep.
	Problem string `json:"problem,omitempty"`
	// Source is the C payload for the HLS frameworks (repair, hlstest).
	// Empty selects the framework's default benchmark sweep.
	Source string `json:"source,omitempty"`
	// Kernel names the function to synthesize when Source is set.
	Kernel string `json:"kernel,omitempty"`
	// Vectors are equivalence/seed input vectors for repair and hlstest.
	Vectors [][]int64 `json:"vectors,omitempty"`
	// Params carries framework-specific numeric knobs (k, depth, evals,
	// temperature, ...). Unknown keys are rejected by Validate.
	Params map[string]float64 `json:"params,omitempty"`
}

// Param returns the named knob or def when unset.
func (s Spec) Param(name string, def float64) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	return def
}

// Validate checks the spec against the default registry: the framework
// must be registered, the envelope must be executable, every param key
// must be known to the pipeline, and the pipeline's own payload checks
// must pass.
func (s Spec) Validate() error {
	return s.ValidateIn(DefaultRegistry())
}

// ValidateIn is Validate against an explicit registry — the check the
// edaserver front end runs before a spec is allowed onto the job queue.
func (s Spec) ValidateIn(reg *Registry) error {
	if s.Framework == "" {
		return fmt.Errorf("eda: Spec.Framework is required (one of %s)", strings.Join(reg.Names(), ", "))
	}
	p, ok := reg.Lookup(s.Framework)
	if !ok {
		return fmt.Errorf("eda: unknown framework %q (one of %s)", s.Framework, strings.Join(reg.Names(), ", "))
	}
	if err := s.Run.Validate(); err != nil {
		return err
	}
	for key := range s.Params {
		known := false
		for _, k := range p.Params {
			if key == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("eda: framework %q does not take param %q (known: %s)",
				s.Framework, key, strings.Join(p.Params, ", "))
		}
	}
	if p.Check != nil {
		if err := p.Check(s); err != nil {
			return err
		}
	}
	return nil
}

// Report is the uniform outcome of one front-door run.
type Report struct {
	// Framework echoes the resolved pipeline name.
	Framework string
	// Spec echoes the (default-filled) spec that ran.
	Spec Spec
	// OK is the pipeline's headline success bit (all problems solved, all
	// kernels repaired, ...).
	OK bool
	// Summary is a one-line human-readable outcome.
	Summary string
	// Metrics are the run's headline numbers (solved, total, best_watts,
	// tokens_out, ...), render-sorted by key.
	Metrics map[string]float64
	// Detail is the framework-native result (*autochip.Result,
	// []*core.Report, ...) for callers that need more than the envelope.
	Detail any
	// Elapsed is the wall clock of the pipeline run.
	Elapsed time.Duration
	// Cache is the simfarm traffic observed during this run: the delta of
	// the process-shared farm's counters across the run. The shared farm
	// is what makes cross-run compile reuse work, so when several
	// eda.Run calls execute concurrently each delta includes the
	// neighbors' traffic — treat the counters as process-level
	// observability during the run, not per-run attribution.
	Cache simfarm.FarmStats
}

// Metric records one headline number, allocating the map on first use.
func (r *Report) Metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
}

// Render formats the report for CLI output: status, summary, then the
// metrics in sorted order.
func (r *Report) Render() string {
	var b strings.Builder
	status := "ok"
	if !r.OK {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s: %s\n", r.Framework, status, r.Summary)
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-18s %g\n", k, r.Metrics[k])
	}
	return b.String()
}

// Option adjusts one Run call.
type Option func(*runOptions)

type runOptions struct {
	sink     Sink
	workers  int
	timeout  time.Duration
	registry *Registry
}

// WithSink streams the run's events to sink (phases, candidates, LLM
// calls, cache traffic). The sink must tolerate concurrent Emit calls.
func WithSink(sink Sink) Option {
	return func(o *runOptions) { o.sink = sink }
}

// WithWorkers overrides the spec's worker bound.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.workers = n }
}

// WithTimeout bounds the run's wall clock, tightening any spec deadline.
func WithTimeout(d time.Duration) Option {
	return func(o *runOptions) { o.timeout = d }
}

// WithRegistry resolves the framework in reg instead of the default
// registry (for tests and embedders with custom pipelines).
func WithRegistry(reg *Registry) Option {
	return func(o *runOptions) { o.registry = reg }
}

// Run executes one spec through its registered pipeline: validate, fill
// defaults, derive the deadline, attach the event sink to the context,
// run, and wrap the outcome in a Report that carries the simfarm cache
// traffic of the run. The returned error is either a validation error, a
// pipeline failure, or the context's cancellation error; on cancellation
// the partial Report (when the pipeline produced one) is returned
// alongside it.
func Run(ctx context.Context, spec Spec, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	reg := o.registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	if o.workers != 0 {
		spec.Run.Workers = o.workers
	}
	if o.timeout > 0 && (spec.Run.Deadline == 0 || o.timeout < spec.Run.Deadline) {
		spec.Run.Deadline = o.timeout
	}
	spec = reg.Normalize(spec)
	if err := spec.ValidateIn(reg); err != nil {
		return nil, err
	}
	pipeline, _ := reg.Lookup(spec.Framework)

	if o.sink != nil {
		ctx = core.WithSink(ctx, o.sink)
	}
	if spec.Run.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Run.Deadline)
		defer cancel()
	}
	sink := core.SinkOf(ctx)
	sink.Emit(Event{Kind: EventRunStart, Framework: spec.Framework,
		Detail: fmt.Sprintf("tier=%s seed=%d", spec.Run.Tier, spec.Run.Seed)})

	before := simfarm.Default().Stats()
	start := time.Now()
	report, err := pipeline.Run(ctx, spec)
	elapsed := time.Since(start)
	// When a span recorder rides the context (the job service hangs one
	// off every job), the whole pipeline is one phase; the farm records
	// the finer lint/compile/sim splits inside it.
	if sp := obs.SpansOf(ctx); sp != nil {
		sp.Record(obs.PhasePipeline, elapsed)
	}
	cache := simfarm.Default().Stats().Delta(before)
	simfarm.EmitStats(sink, cache)

	if report != nil {
		report.Framework = spec.Framework
		report.Spec = spec
		report.Elapsed = elapsed
		report.Cache = cache
		sink.Emit(Event{Kind: EventRunEnd, Framework: spec.Framework,
			OK: report.OK && err == nil, Detail: report.Summary})
	} else {
		detail := ""
		if err != nil {
			detail = err.Error()
		}
		sink.Emit(Event{Kind: EventRunEnd, Framework: spec.Framework, Detail: detail})
	}
	return report, err
}
