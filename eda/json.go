package eda

import (
	"encoding/json"
	"fmt"

	"llm4eda/internal/simfarm"
)

// ReportWire is the stable machine-readable form of a Report. The CLI's
// -json flag and the edaserver job endpoints both encode through it, and
// the eda/client package decodes into the same type, so there is exactly
// one report wire format in the system and a field added here reaches
// every producer and consumer by construction. Elapsed travels as
// fractional milliseconds; Detail is the framework-native result in its
// natural JSON shape, kept raw so typed clients can decode it against
// the framework's result struct.
type ReportWire struct {
	Framework string             `json:"framework"`
	OK        bool               `json:"ok"`
	Summary   string             `json:"summary"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
	Spec      Spec               `json:"spec"`
	Cache     simfarm.FarmStats  `json:"cache"`
	Detail    json.RawMessage    `json:"detail,omitempty"`
}

// JSON encodes the report in the shared wire format. A Detail value that
// does not marshal (no built-in framework produces one, but registry
// embedders may) degrades to a descriptive placeholder string instead of
// failing the whole report.
func (r *Report) JSON() ([]byte, error) {
	detail, err := json.Marshal(r.Detail)
	if err != nil {
		detail, _ = json.Marshal(fmt.Sprintf("unencodable detail (%T): %v", r.Detail, err))
	}
	if r.Detail == nil {
		detail = nil
	}
	return json.Marshal(ReportWire{
		Framework: r.Framework,
		OK:        r.OK,
		Summary:   r.Summary,
		Metrics:   r.Metrics,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1e3,
		Spec:      r.Spec,
		Cache:     r.Cache,
		Detail:    detail,
	})
}
