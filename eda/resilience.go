package eda

import (
	"context"
	"fmt"
	"time"

	"llm4eda/internal/core"
	"llm4eda/internal/faultinject"
)

// MetricTransientRetries is the Report metric counting per-problem
// attempts that were retried after a transient failure. It is only set
// when non-zero (so deterministic golden outputs are unchanged), and
// the edaserver layer folds it into the /v1/stats retry counter.
const MetricTransientRetries = "transient_retries"

// transientRetryBudget bounds how many times one problem attempt is
// retried after transient failures before the error is surfaced.
const transientRetryBudget = 2

// transientRetryBase is the first retry's backoff; it doubles per
// attempt. Small on purpose: a transient here is a flake (an injected
// one, or a momentarily overloaded substrate), not a remote service
// with a recovery SLA.
const transientRetryBase = 5 * time.Millisecond

// runProblem executes one candidate-loop step with transient-failure
// classification: an error that classifies as transient
// (core.IsTransient — anything in the chain exposing Transient() bool)
// is retried with a doubling backoff up to transientRetryBudget times;
// permanent errors, context cancellation and exhausted budgets surface
// to the caller unchanged. Each retry is counted into *retries and
// announced as a note event, so an injected flake costs one visible
// retry instead of a failed report.
//
// The chaos hook: the eda.problem fault point fires before every
// attempt when the request context carries an injector, which is how
// `make chaos-test` plants transient flakes and wedges exactly here.
func runProblem(ctx context.Context, framework, id string, retries *int, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fireProblemFault(ctx)
		if err == nil {
			err = fn()
		}
		if err == nil || ctx.Err() != nil || !core.IsTransient(err) || attempt >= transientRetryBudget {
			return err
		}
		*retries++
		core.Emit(ctx, core.Event{Kind: core.EventNote, Framework: framework, Phase: id,
			Detail: fmt.Sprintf("transient failure, retry %d/%d: %v", attempt+1, transientRetryBudget, err)})
		t := time.NewTimer(transientRetryBase << attempt)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// fireProblemFault fires the per-problem chaos hook, nil-guarded so a
// production request (no injector in the context) pays one map lookup.
func fireProblemFault(ctx context.Context) error {
	if in := faultinject.From(ctx); in != nil {
		return in.Fire(ctx, faultinject.PointEDAProblem)
	}
	return nil
}

// setRetryMetric records the absorbed-retry count on a report, only
// when retries actually happened.
func setRetryMetric(rep *Report, retries int) {
	if rep != nil && retries > 0 {
		rep.Metric(MetricTransientRetries, float64(retries))
	}
}
