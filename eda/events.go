package eda

import (
	"fmt"
	"io"
	"sync"

	"llm4eda/internal/core"
)

// Event is one progress report streamed from a run to its Sink; Sink
// receives them (concurrently — batch evaluation emits from workers).
// Both are aliases of the core types the frameworks emit, so a Sink
// written against this package works at every layer.
type (
	Event     = core.Event
	EventKind = core.EventKind
	Sink      = core.Sink
	// SinkFunc adapts a function to the Sink interface.
	SinkFunc = core.SinkFunc
)

// Event kinds, re-exported from core.
const (
	EventRunStart   = core.EventRunStart
	EventRunEnd     = core.EventRunEnd
	EventPhaseStart = core.EventPhaseStart
	EventPhaseEnd   = core.EventPhaseEnd
	EventCandidate  = core.EventCandidate
	EventLLMCall    = core.EventLLMCall
	EventCache      = core.EventCache
	EventNote       = core.EventNote
)

// progressPrinter renders the event stream as indented progress lines.
type progressPrinter struct {
	mu sync.Mutex
	w  io.Writer
	// verbose prints every candidate and LLM call; terse mode keeps
	// run/phase boundaries and cache traffic only.
	verbose bool
}

// ProgressPrinter returns a Sink that renders events to w as one-line
// progress updates — the canonical event consumer the examples and the
// CLI share. With verbose=false only run/phase boundaries, notes and
// cache counters print; verbose=true adds every scored candidate and
// model call.
func ProgressPrinter(w io.Writer, verbose bool) Sink {
	return &progressPrinter{w: w, verbose: verbose}
}

func (p *progressPrinter) Emit(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case EventRunStart:
		fmt.Fprintf(p.w, "[%s] run start (%s)\n", ev.Framework, ev.Detail)
	case EventRunEnd:
		status := "done"
		if !ev.OK {
			status = "done (not solved)"
		}
		fmt.Fprintf(p.w, "[%s] %s: %s\n", ev.Framework, status, ev.Detail)
	case EventPhaseStart:
		fmt.Fprintf(p.w, "[%s] %s %s begin\n", ev.Framework, ev.Phase, seqOf(ev))
	case EventPhaseEnd:
		status := "ok"
		if !ev.OK {
			status = "FAIL"
		}
		fmt.Fprintf(p.w, "[%s] %s %s %s %s\n", ev.Framework, ev.Phase, seqOf(ev), status, ev.Detail)
	case EventCandidate:
		if p.verbose {
			fmt.Fprintf(p.w, "[%s] candidate %s score=%.3f ok=%v %s\n",
				ev.Framework, seqOf(ev), ev.Score, ev.OK, ev.Detail)
		}
	case EventLLMCall:
		if p.verbose {
			fmt.Fprintf(p.w, "[%s] llm call %s (%s) tokens=%d/%d\n",
				ev.Framework, seqOf(ev), ev.Phase, ev.TokensIn, ev.TokensOut)
		}
	case EventCache:
		fmt.Fprintf(p.w, "[%s] cache %-6s hits=%d misses=%d evictions=%d %s\n",
			ev.Framework, ev.Phase, ev.Hits, ev.Misses, ev.Evictions, ev.Detail)
	case EventNote:
		fmt.Fprintf(p.w, "[%s] %s\n", ev.Framework, ev.Detail)
	}
}

func seqOf(ev Event) string {
	switch {
	case ev.Total > 0:
		return fmt.Sprintf("%d/%d", ev.Seq, ev.Total)
	case ev.Seq > 0:
		return fmt.Sprintf("%d", ev.Seq)
	default:
		return "-"
	}
}

// CountingSink tallies events by kind; tests and dashboards use it to
// assert on a run's event traffic without buffering the stream.
type CountingSink struct {
	mu     sync.Mutex
	counts map[EventKind]int
}

// NewCountingSink returns an empty counter.
func NewCountingSink() *CountingSink {
	return &CountingSink{counts: map[EventKind]int{}}
}

// Emit tallies one event.
func (c *CountingSink) Emit(ev Event) {
	c.mu.Lock()
	c.counts[ev.Kind]++
	c.mu.Unlock()
}

// Count returns how many events of kind were emitted.
func (c *CountingSink) Count(kind EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Total returns the total number of events seen.
func (c *CountingSink) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}
