package eda_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"llm4eda/eda"
	"llm4eda/internal/core"
	"llm4eda/internal/faultinject"
)

func retrySpec(seed uint64) eda.Spec {
	return eda.Spec{
		Framework: "vrank",
		Problem:   "mux4",
		Run:       core.RunSpec{Seed: seed},
		Params:    map[string]float64{"k": 2},
	}
}

// TestTransientRetryAbsorbsFlake: one injected transient failure in the
// candidate loop costs one retry (counted in the report metric and
// narrated as a note event), not a failed report.
func TestTransientRetryAbsorbsFlake(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointEDAProblem, Kind: faultinject.KindError, Every: 1, Max: 1},
	}})
	ctx := faultinject.With(context.Background(), in)

	var mu sync.Mutex
	var notes []string
	sink := core.SinkFunc(func(ev core.Event) {
		if ev.Kind == core.EventNote {
			mu.Lock()
			notes = append(notes, ev.Detail)
			mu.Unlock()
		}
	})
	rep, err := eda.Run(ctx, retrySpec(3), eda.WithSink(sink))
	if err != nil {
		t.Fatalf("Run after one transient flake: %v", err)
	}
	if got := rep.Metrics[eda.MetricTransientRetries]; got != 1 {
		t.Fatalf("transient_retries metric = %v, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, n := range notes {
		if strings.Contains(n, "transient failure, retry") {
			found = true
		}
	}
	if !found {
		t.Errorf("no retry note event emitted; notes: %q", notes)
	}
}

// TestTransientRetryBudgetExhausted: a fault that keeps firing exhausts
// the per-problem budget and surfaces the transient error with a
// partial report carrying the retry count.
func TestTransientRetryBudgetExhausted(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointEDAProblem, Kind: faultinject.KindError, Every: 1},
	}})
	ctx := faultinject.With(context.Background(), in)

	rep, err := eda.Run(ctx, retrySpec(4))
	if err == nil {
		t.Fatal("Run succeeded under a permanently-firing fault")
	}
	if !core.IsTransient(err) {
		t.Fatalf("surfaced error %v is not the transient classification", err)
	}
	if rep == nil {
		t.Fatal("no partial report with the surfaced error")
	}
	if got := rep.Metrics[eda.MetricTransientRetries]; got != 2 {
		t.Fatalf("transient_retries metric = %v, want the full budget of 2", got)
	}
}

// TestNoRetryMetricWhenClean: a clean run must not grow a zero-valued
// retry metric (golden renderings depend on the metric set).
func TestNoRetryMetricWhenClean(t *testing.T) {
	rep, err := eda.Run(context.Background(), retrySpec(5))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := rep.Metrics[eda.MetricTransientRetries]; ok {
		t.Fatal("clean run grew a transient_retries metric")
	}
}
