package eda_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"llm4eda/eda"
)

// TestSpecParam covers the knob accessor directly: set, unset and
// nil-map paths.
func TestSpecParam(t *testing.T) {
	var zero eda.Spec
	if got := zero.Param("k", 7); got != 7 {
		t.Errorf("nil params: Param = %g, want default 7", got)
	}
	s := eda.Spec{Params: map[string]float64{"k": 3, "temperature": 0}}
	if got := s.Param("k", 7); got != 3 {
		t.Errorf("set param: Param = %g, want 3", got)
	}
	// An explicitly-set zero wins over the default: 0 is a real value
	// (temperature=0 means greedy sampling, not "use the default").
	if got := s.Param("temperature", 0.8); got != 0 {
		t.Errorf("explicit zero param: Param = %g, want 0", got)
	}
	if got := s.Param("depth", 4); got != 4 {
		t.Errorf("missing param: Param = %g, want default 4", got)
	}
}

// TestSpecValidateDirect drives Spec.Validate (not eda.Run, which the
// older TestValidation goes through) over the error paths the server
// front end depends on rejecting before anything reaches the job queue.
func TestSpecValidateDirect(t *testing.T) {
	cases := []struct {
		name string
		spec eda.Spec
		want string // "" = must validate
	}{
		{"valid minimal", eda.Spec{Framework: "vrank"}, ""},
		{"valid with payload", eda.Spec{Framework: "vrank", Problem: "mux4",
			Params: map[string]float64{"k": 3}}, ""},
		{"empty framework", eda.Spec{}, "Framework is required"},
		{"unknown framework", eda.Spec{Framework: "quantum"}, "unknown framework"},
		{"unknown param", eda.Spec{Framework: "vrank",
			Params: map[string]float64{"depth": 2}}, "does not take param"},
		{"bad tier", eda.Spec{Framework: "vrank",
			Run: eda.RunSpec{Tier: "gpt9"}}, "unknown tier"},
		{"negative workers", eda.Spec{Framework: "vrank",
			Run: eda.RunSpec{Workers: -2}}, "Workers"},
		{"negative deadline", eda.Spec{Framework: "vrank",
			Run: eda.RunSpec{Deadline: -time.Minute}}, "Deadline"},
		{"unknown problem", eda.Spec{Framework: "agent", Problem: "nonesuch"}, "unknown problem"},
		{"payload mismatch", eda.Spec{Framework: "slt", Problem: "adder4"}, "does not take a Problem"},
		{"kernel without source", eda.Spec{Framework: "hlstest", Kernel: "f"}, "Source is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateInCustomRegistry pins the exported registry-scoped variant:
// a framework known only to a custom registry validates there and nowhere
// else.
func TestValidateInCustomRegistry(t *testing.T) {
	reg := eda.NewRegistry()
	if err := reg.Register(eda.Pipeline{
		Name: "custom",
		Run: func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
			return &eda.Report{OK: true, Summary: "ok"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	spec := eda.Spec{Framework: "custom"}
	if err := spec.ValidateIn(reg); err != nil {
		t.Errorf("ValidateIn(custom reg) = %v", err)
	}
	if err := spec.Validate(); err == nil {
		t.Error("default registry accepted a custom-only framework")
	}
}

// TestRegistryNormalize pins the canonical form the service layer
// content-addresses: defaults filled, pipeline tier default applied,
// idempotent.
func TestRegistryNormalize(t *testing.T) {
	reg := eda.DefaultRegistry()
	n := reg.Normalize(eda.Spec{Framework: "slt"})
	if n.Run.Seed != 1 || n.Run.Tier != "large" {
		t.Errorf("slt normalization = %+v, want seed 1 tier large", n.Run)
	}
	n2 := reg.Normalize(n)
	if !reflect.DeepEqual(n, n2) {
		t.Errorf("Normalize not idempotent: %+v vs %+v", n, n2)
	}
	if n := reg.Normalize(eda.Spec{Framework: "vrank", Run: eda.RunSpec{Tier: "Small", Seed: 9}}); n.Run.Tier != "small" || n.Run.Seed != 9 {
		t.Errorf("explicit envelope clobbered: %+v", n.Run)
	}
}

// TestConcurrentRunsShareRegistry is the race-freedom proof the server
// relies on: many eda.Run calls resolving pipelines in the one default
// registry, concurrently, must all succeed and stay deterministic
// (identical specs yield identical metrics). make test-race runs this
// package under the race detector.
func TestConcurrentRunsShareRegistry(t *testing.T) {
	specs := []eda.Spec{
		{Framework: "vrank", Problem: "mux4", Params: map[string]float64{"k": 3}},
		{Framework: "autochip", Problem: "and4", Params: map[string]float64{"k": 2, "depth": 2}},
	}
	const per = 4
	type outcome struct {
		spec    int
		metrics map[string]float64
		err     error
	}
	out := make([]outcome, per*len(specs))
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			si := i % len(specs)
			report, err := eda.Run(context.Background(), specs[si])
			o := outcome{spec: si, err: err}
			if report != nil {
				o.metrics = report.Metrics
			}
			out[i] = o
		}(i)
	}
	wg.Wait()
	var want [2]map[string]float64
	for _, o := range out {
		if o.err != nil {
			t.Fatalf("concurrent run failed: %v", o.err)
		}
		if want[o.spec] == nil {
			want[o.spec] = o.metrics
			continue
		}
		if !reflect.DeepEqual(o.metrics, want[o.spec]) {
			t.Errorf("spec %d metrics diverged across concurrent runs: %v vs %v",
				o.spec, o.metrics, want[o.spec])
		}
	}
}

// TestReportJSONRoundTrip pins the shared wire format: metrics, spec
// echo, and a decodable detail payload survive (*Report).JSON.
func TestReportJSONRoundTrip(t *testing.T) {
	report, err := eda.Run(context.Background(), eda.Spec{
		Framework: "vrank", Problem: "mux4", Params: map[string]float64{"k": 3},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := report.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var wire struct {
		Framework string             `json:"framework"`
		OK        bool               `json:"ok"`
		Summary   string             `json:"summary"`
		Metrics   map[string]float64 `json:"metrics"`
		ElapsedMS float64            `json:"elapsed_ms"`
		Spec      eda.Spec           `json:"spec"`
		Detail    json.RawMessage    `json:"detail"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if wire.Framework != "vrank" || !reflect.DeepEqual(wire.Metrics, report.Metrics) {
		t.Errorf("wire lost fields: %+v", wire)
	}
	if wire.Spec.Run.Seed != report.Spec.Run.Seed || wire.Spec.Problem != "mux4" {
		t.Errorf("wire spec mismatch: %+v", wire.Spec)
	}
	if len(wire.Detail) == 0 {
		t.Error("framework-native detail dropped from the wire")
	}
	// Unencodable detail degrades instead of failing.
	bad := &eda.Report{Framework: "x", Detail: func() {}}
	if _, err := bad.JSON(); err != nil {
		t.Errorf("unencodable detail: JSON() = %v, want graceful degradation", err)
	}
}
