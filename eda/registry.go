package eda

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Pipeline is one named framework behind the front door: how to validate
// a spec for it and how to run it.
type Pipeline struct {
	// Name is the registry key ("autochip", "slt", ...).
	Name string
	// Doc is a one-line description for CLI listings.
	Doc string
	// Params lists the numeric knobs the pipeline accepts in Spec.Params;
	// Validate rejects unknown keys so typos fail fast.
	Params []string
	// DefaultTier overrides the global tier default ("frontier") when the
	// spec leaves Run.Tier empty — the slt loop, for example, is the
	// paper's GPT-4-class (large) setup.
	DefaultTier string
	// Check validates the pipeline-specific payload (problem exists,
	// kernel named, ...). Nil means no extra checks.
	Check func(Spec) error
	// Run executes the spec. The context carries the event sink and the
	// deadline; implementations must propagate it into the framework.
	Run func(ctx context.Context, spec Spec) (*Report, error)
}

// Registry maps framework names to pipelines. The zero value is unusable;
// use NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Pipeline
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*Pipeline{}}
}

// Register adds a pipeline, rejecting duplicates and incomplete entries.
func (r *Registry) Register(p Pipeline) error {
	if p.Name == "" {
		return fmt.Errorf("eda: pipeline name must not be empty")
	}
	if p.Run == nil {
		return fmt.Errorf("eda: pipeline %q has no Run func", p.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[p.Name]; dup {
		return fmt.Errorf("eda: pipeline %q already registered", p.Name)
	}
	r.m[p.Name] = &p
	return nil
}

// Lookup resolves a pipeline by name.
func (r *Registry) Lookup(name string) (*Pipeline, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.m[name]
	return p, ok
}

// Normalize returns the spec exactly as Run will execute it: the
// pipeline-specific tier default applied (e.g. slt runs the paper's
// GPT-4-class setup) and then the shared envelope defaults filled.
// Normalize is idempotent, and it is the canonical form the edaserver
// layer content-addresses when deduplicating resubmitted specs — two
// specs that normalize identically describe the same deterministic run.
func (r *Registry) Normalize(spec Spec) Spec {
	if p, ok := r.Lookup(spec.Framework); ok && spec.Run.Tier == "" && p.DefaultTier != "" {
		spec.Run.Tier = p.DefaultTier
	}
	spec.Run = spec.Run.WithDefaults()
	return spec
}

// Names lists the registered pipelines in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var (
	defaultRegistry     *Registry
	defaultRegistryOnce sync.Once
)

// DefaultRegistry returns the process-wide registry holding the ten
// built-in framework pipelines.
func DefaultRegistry() *Registry {
	defaultRegistryOnce.Do(func() {
		defaultRegistry = NewRegistry()
		for _, p := range builtinPipelines() {
			if err := defaultRegistry.Register(p); err != nil {
				panic(err) // built-ins are statically consistent
			}
		}
	})
	return defaultRegistry
}

// Frameworks lists the built-in framework names, sorted.
func Frameworks() []string {
	return DefaultRegistry().Names()
}
